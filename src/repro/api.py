"""The supported library surface: ``run``, ``sweep``, ``query``, ``serve``.

Everything the CLI can do, a program can do through this module — and
through *only* this module, so the two can't drift.  The facade wraps
four verbs around the engine:

* :func:`run` — one election: a protocol on a topology under a seed
  (optionally under a fault adversary).
* :func:`sweep` — an experiment grid through the parallel engine,
  configured by one :class:`SweepConfig` instead of the ~15 loose
  keyword arguments :func:`repro.parallel.runner.run_experiments` grew.
* :func:`query` — the memoized read path: answer a grid from a
  persistent :class:`~repro.archive.store.ResultArchive`, simulating
  only the cells the archive is missing (see :mod:`repro.archive`).
* :func:`serve` — the same read path over HTTP
  (:mod:`repro.archive.service`).

:func:`plan_sweep` is the shared spec planner: the CLI's
``--algorithms/--scenario/--adversary`` surface and the HTTP endpoint's
query parameters both expand to experiment specs through it.

Example::

    from repro import api
    from repro.workloads import suite_by_name

    specs, _ = api.plan_sweep(suite="tiny", algorithms=["flooding"], seeds=3)
    cfg = api.SweepConfig(workers=4)
    results = api.sweep(specs, config=cfg)
    answer = api.query(specs, archive="results.sqlite", config=cfg)
    assert answer.report.simulated_runs == 0  # second time around
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .analysis.experiments import ExperimentResult, ExperimentSpec
from .analysis.streaming import ResultSink
from .core.errors import ConfigurationError
from .election.base import LeaderElectionResult
from .graphs.topology import Topology
from .obs import TelemetrySink

__all__ = [
    "SweepConfig",
    "plan_sweep",
    "run",
    "sweep",
    "query",
    "serve",
]


@dataclass(frozen=True)
class SweepConfig:
    """Execution configuration of a sweep or query, as one value.

    Every knob :func:`repro.parallel.runner.run_experiments` accepts,
    grouped and validated once — build it at the edge (CLI parsing, HTTP
    parameters, test setup) and hand the same value to :func:`sweep` and
    :func:`query` calls instead of threading loose keywords through every
    layer.  The defaults are the engine's: one worker, the ``auto``
    simulator backend, adaptive dispatch, JSONL checkpoints.
    """

    #: worker processes (1 = in-process serial execution)
    workers: int = 1
    #: simulator core: "auto", "round" or "event"
    backend: str = "auto"
    #: pool strategy: "adaptive" (cost-aware batching) or "static"
    dispatch: str = "adaptive"
    #: multiprocessing start method (platform default when ``None``)
    start_method: Optional[str] = None
    #: checkpoint file for resume; required by ``shard``
    checkpoint: Optional[Union[str, Path]] = None
    checkpoint_compact: bool = False
    checkpoint_format: str = "jsonl"
    checkpoint_flush_interval: Optional[float] = None
    #: ``(i, k)`` fixed slice or ``(AUTO_SHARD, blocks)`` work stealing
    shard: Optional[Tuple[object, int]] = None
    #: derive an independent deterministic seed per cell from ``base_seed``
    derive_seeds: bool = False
    base_seed: Optional[int] = None
    task_timeout: Optional[float] = None
    max_batch: Optional[int] = None
    lease_timeout: Optional[float] = None
    #: pre-computed expansion profiles, keyed by topology name/fingerprint
    profiles: Optional[Dict[str, object]] = None
    telemetry: Optional[TelemetrySink] = None
    #: in-worker profiler name (requires ``telemetry``)
    profile: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.checkpoint_compact and self.checkpoint is None:
            raise ConfigurationError(
                "checkpoint_compact=True requires checkpoint="
            )
        if self.shard is not None and self.checkpoint is None:
            raise ConfigurationError(
                "shard= requires checkpoint= (shard results must persist "
                "so merge can fold them together)"
            )
        if self.profile is not None and self.telemetry is None:
            raise ConfigurationError(
                "profile= requires telemetry= (hotspots are reported "
                "through the telemetry summary)"
            )

    def runner_kwargs(self) -> Dict[str, object]:
        """The keyword arguments for :func:`repro.parallel.runner.run_experiments`."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def query_kwargs(self) -> Dict[str, object]:
        """The subset of knobs a memoized query accepts.

        A query stages its own checkpoint and owns its own dispatch, so
        checkpoint/shard settings on the config are a caller error there
        — populate the archive with :func:`sweep` runs instead.
        """
        if self.checkpoint is not None or self.shard is not None:
            raise ConfigurationError(
                "a query ignores checkpoint=/shard= configuration: it "
                "stages its own checkpoint internally; run the populate "
                "sweep with those knobs instead"
            )
        kwargs = self.runner_kwargs()
        for reserved in (
            "checkpoint",
            "checkpoint_compact",
            "checkpoint_format",
            "checkpoint_flush_interval",
            "shard",
            "lease_timeout",
        ):
            kwargs.pop(reserved)
        return kwargs


def plan_sweep(
    *,
    suite: Optional[str] = None,
    topologies: Optional[Sequence[Topology]] = None,
    algorithms: Optional[Sequence[object]] = None,
    scenario: Optional[str] = None,
    adversary: Optional[object] = None,
    adversary_params: Optional[Sequence[str]] = None,
    seeds: int = 3,
    collect_profile: bool = True,
) -> Tuple[List[ExperimentSpec], bool]:
    """Expand a sweep/query request into experiment specs.

    Returns ``(specs, adversarial)`` where ``adversarial`` says whether
    the grid injects faults (and a sweep's exit criterion becomes the
    safety verdict).  This is the one planner behind ``repro-le sweep``,
    ``repro-le query`` and the HTTP ``/query`` endpoint:

    * ``topologies`` (explicit) or ``suite`` (a name from
      :data:`repro.workloads.SUITES`; default ``"mixed"``) fixes the
      topology axis;
    * ``algorithms`` are protocol spec strings/values (default
      ``["flooding", "gilbert"]``);
    * ``scenario`` names a ladder from
      :data:`repro.workloads.DYNAMIC_SCENARIOS` (adversary rungs) or
      :data:`repro.workloads.PROTOCOL_SCENARIOS` (parameterised protocol
      variants — fixes the algorithm list itself);
    * ``adversary`` (+ ``adversary_params``, ``K=V`` strings) attaches
      one fault model to every spec instead.
    """
    from .workloads import (
        DYNAMIC_SCENARIOS,
        PROTOCOL_SCENARIOS,
        dynamic_scenario,
        protocol_scenario,
        suite_by_name,
        sweep_specs,
    )

    if adversary is not None and scenario is not None:
        raise ConfigurationError(
            "adversary and scenario are mutually exclusive"
        )
    if adversary_params and adversary is None:
        raise ConfigurationError("adversary_params requires adversary")
    if seeds < 1:
        raise ConfigurationError(f"seeds must be >= 1, got {seeds}")
    if topologies is None:
        topologies = suite_by_name(suite if suite is not None else "mixed")
    elif suite is not None:
        raise ConfigurationError("pass either suite= or topologies=, not both")

    chosen = list(algorithms) if algorithms is not None else ["flooding", "gilbert"]
    adversarial = bool(adversary or scenario in DYNAMIC_SCENARIOS)
    if scenario is not None and scenario in PROTOCOL_SCENARIOS:
        # A protocol scenario fixes the algorithm list itself: a ladder of
        # parameterised variants of the protocols under study.
        if algorithms is not None:
            raise ConfigurationError(
                f"scenario {scenario!r} is a protocol ladder that fixes "
                f"the algorithm list; drop algorithms (dynamic scenarios "
                f"{sorted(DYNAMIC_SCENARIOS)} do combine with it)"
            )
        specs = sweep_specs(
            protocol_scenario(scenario),
            topologies,
            seeds=tuple(range(seeds)),
            collect_profile=collect_profile,
        )
    elif scenario is not None:
        from .dynamics import robustness_specs

        if scenario not in DYNAMIC_SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {scenario!r}; available: dynamic "
                f"{sorted(DYNAMIC_SCENARIOS)}, protocol "
                f"{sorted(PROTOCOL_SCENARIOS)}"
            )
        specs = robustness_specs(
            chosen,
            topologies,
            dynamic_scenario(scenario),
            seeds=tuple(range(seeds)),
            collect_profile=collect_profile,
        )
    else:
        spec_adversary = _resolve_adversary(adversary, adversary_params)
        specs = sweep_specs(
            chosen,
            topologies,
            seeds=tuple(range(seeds)),
            collect_profile=collect_profile,
            adversary=spec_adversary,
        )
    return specs, adversarial


def _resolve_adversary(adversary, adversary_params):
    """An :class:`~repro.dynamics.spec.AdversarySpec` from its CLI spelling."""
    if adversary is None:
        return None
    from .dynamics import parse_adversary_params, spec_from_cli
    from .dynamics.spec import AdversarySpec

    if isinstance(adversary, AdversarySpec):
        if adversary_params:
            raise ConfigurationError(
                "adversary_params only combines with a string adversary "
                "spelling; bake parameters into the AdversarySpec instead"
            )
        return adversary
    return spec_from_cli(
        str(adversary), parse_adversary_params(list(adversary_params or []))
    )


def run(
    algorithm: object,
    topology: Union[Topology, str],
    *,
    seed: int = 0,
    adversary: Optional[object] = None,
    adversary_params: Optional[Sequence[str]] = None,
    backend: str = "auto",
) -> LeaderElectionResult:
    """Run one election and return its result.

    ``algorithm`` is a protocol spec — a ``"name[:k=v,...]"`` string or a
    :class:`~repro.protocols.spec.ProtocolSpec` — resolved through the
    protocol registry.  ``topology`` is a
    :class:`~repro.graphs.topology.Topology` or a ``"family:arg[:arg]"``
    generator string.  ``adversary`` optionally runs the election under a
    fault model (same spellings as the CLI's ``--adversary``).
    """
    from .core.simulator import backend_scope
    from .protocols import ProtocolSpec, protocol_runner

    if isinstance(topology, str):
        from .cli import parse_topology

        topology = parse_topology(topology)
    spec = (
        ProtocolSpec.parse(algorithm)
        if isinstance(algorithm, str)
        else algorithm
    )
    runner = protocol_runner(spec)
    adversary_spec = _resolve_adversary(adversary, adversary_params)
    if adversary_spec is not None:
        from .dynamics.runners import AdversarialRunner

        runner = AdversarialRunner(runner, adversary_spec)
    with backend_scope(backend):
        return runner(topology, seed)


def sweep(
    specs: Sequence[ExperimentSpec],
    *,
    config: Optional[SweepConfig] = None,
    sinks: Sequence[ResultSink] = (),
) -> List[ExperimentResult]:
    """Run an experiment grid through the parallel engine.

    Results are bit-identical for any ``config`` worker count, dispatch
    strategy, backend or shard layout — the configuration decides *how*
    the grid executes, never *what* it measures.
    """
    from .parallel.runner import run_experiments

    config = config if config is not None else SweepConfig()
    return run_experiments(specs, sinks=sinks, **config.runner_kwargs())


def query(
    specs: Sequence[ExperimentSpec],
    *,
    archive: Union[str, Path, "object"],
    config: Optional[SweepConfig] = None,
    sinks: Sequence[ResultSink] = (),
):
    """Answer an experiment grid from ``archive``, simulating only misses.

    Returns a :class:`~repro.archive.query.QueryResult`: the folded
    results (bit-identical to a from-scratch :func:`sweep`, wall-clock
    aside) plus the cache accounting — asking for the same grid twice
    reports ``simulated_runs == 0`` the second time.
    """
    from .archive.query import query_experiments

    config = config if config is not None else SweepConfig()
    return query_experiments(
        specs, archive=archive, sinks=sinks, **config.query_kwargs()
    )


def serve(
    *,
    archive: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8765,
    config: Optional[SweepConfig] = None,
    block: bool = True,
):
    """Serve ``archive`` over HTTP (``/health``, ``/stats``, ``/query``).

    With ``block=True`` (the default) this runs the server loop until
    interrupted.  With ``block=False`` it returns the prepared
    :class:`http.server.ThreadingHTTPServer` — callers (tests, embedders)
    drive ``serve_forever`` themselves and ``shutdown()`` when done.
    """
    from .archive.service import make_server

    server = make_server(
        archive=archive,
        host=host,
        port=port,
        config=config if config is not None else SweepConfig(),
    )
    if block:
        try:
            server.serve_forever()
        finally:
            server.server_close()
    return server
