"""Deterministic randomness management.

Every experiment in the library is driven by a single integer seed.  From
that seed we derive independent, reproducible child random generators — one
per protocol node, plus extra streams for topology generation and for the
experiment driver itself.  Children are derived with
:class:`numpy.random.SeedSequence`, which guarantees well-distributed,
non-overlapping streams, and are exposed as :class:`random.Random` objects
because protocol code only needs cheap scalar draws.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "DEFAULT_SEED",
    "make_rng",
    "spawn_child_rngs",
    "spawn_numpy_generators",
    "derive_seed",
    "RngStream",
]

DEFAULT_SEED = 0x5EED


def make_rng(seed: Optional[int] = None) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically.

    ``None`` maps to :data:`DEFAULT_SEED` so that "unseeded" runs are still
    reproducible; callers that want OS entropy must ask for it explicitly.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)


def derive_seed(seed: Optional[int], *scope: object) -> int:
    """Derive a new integer seed from ``seed`` and a scope description.

    The scope is any hashable sequence of labels (strings, ints) naming the
    consumer, e.g. ``derive_seed(seed, "topology", n)``.  The derivation is
    stable across processes and Python versions because it avoids the
    built-in randomized ``hash``.
    """
    if seed is None:
        seed = DEFAULT_SEED
    material = repr((int(seed),) + tuple(scope)).encode("utf-8")
    digest = np.frombuffer(
        np.void(np.frombuffer(material, dtype=np.uint8).tobytes()).tobytes(),
        dtype=np.uint8,
    )
    # A small, explicit FNV-1a so the derivation does not depend on numpy
    # internals or on Python's salted string hashing.
    acc = 0xCBF29CE484222325
    for byte in digest.tolist():
        acc ^= byte
        acc = (acc * 0x100000001B3) % (1 << 64)
    return int(acc)


def spawn_child_rngs(seed: Optional[int], count: int) -> List[random.Random]:
    """Spawn ``count`` independent :class:`random.Random` children.

    The children are suitable for per-node protocol randomness: they are
    statistically independent streams derived from a single experiment seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if seed is None:
        seed = DEFAULT_SEED
    seq = np.random.SeedSequence(seed)
    children = seq.spawn(count)
    rngs: List[random.Random] = []
    for child in children:
        # ``generate_state`` gives 32-bit words; combine two for a 64-bit seed.
        words = child.generate_state(2)
        rngs.append(random.Random(int(words[0]) << 32 | int(words[1])))
    return rngs


def spawn_numpy_generators(seed: Optional[int], count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent numpy :class:`~numpy.random.Generator`."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if seed is None:
        seed = DEFAULT_SEED
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngStream:
    """An inexhaustible iterator of child RNGs derived from one seed.

    Useful when the number of consumers is not known in advance (for
    example when an experiment sweep decides dynamically how many repeats
    to run).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = DEFAULT_SEED if seed is None else int(seed)
        self._seq = np.random.SeedSequence(self._seed)
        self._drawn = 0

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def drawn(self) -> int:
        """Number of child generators handed out so far."""
        return self._drawn

    def next_rng(self) -> random.Random:
        """Return the next child :class:`random.Random`."""
        child = self._seq.spawn(1)[0]
        self._drawn += 1
        words = child.generate_state(2)
        return random.Random(int(words[0]) << 32 | int(words[1]))

    def next_seed(self) -> int:
        """Return the next child as a plain integer seed."""
        child = self._seq.spawn(1)[0]
        self._drawn += 1
        words = child.generate_state(2)
        return int(words[0]) << 32 | int(words[1])

    def take(self, count: int) -> Sequence[random.Random]:
        """Return ``count`` fresh child RNGs."""
        return [self.next_rng() for _ in range(count)]

    def __iter__(self) -> Iterator[random.Random]:
        while True:
            yield self.next_rng()
