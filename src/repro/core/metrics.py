"""Metric collection for simulated protocol executions.

The quantities the paper bounds — rounds of communication, point-to-point
messages, and bits — are counted here.  A :class:`MetricsCollector` is
attached to a simulator run; protocols and drivers can additionally open
named *phases* ("cautious-broadcast", "random-walk", ...) so that the
benchmark harness can attribute cost to the individual building blocks the
paper analyses separately (Lemma 1, Lemma 2, Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

__all__ = ["PhaseMetrics", "Metrics", "MetricsCollector"]


@dataclass
class PhaseMetrics:
    """Cost of a single named phase of a protocol execution."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0

    def merge(self, other: "PhaseMetrics") -> None:
        """Accumulate ``other`` into this phase in place."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.bits += other.bits

    def as_dict(self) -> Dict[str, int]:
        return {"rounds": self.rounds, "messages": self.messages, "bits": self.bits}


@dataclass
class Metrics:
    """Immutable-ish snapshot of a finished (or in-progress) execution.

    ``dropped_messages`` and ``delayed_messages`` count faults injected by
    a :class:`~repro.core.faults.FaultAdversary` (plus, for drops, messages
    rejected by CONGEST enforcement); both stay zero for runs under the
    paper's reliable execution model.  Dropped and delayed messages are
    still counted in ``messages``/``bits`` — the sender paid for them —
    the fault counters record what the network then did.

    ``sent_messages`` and ``delivered_messages`` count *physical* messages
    (one per occupied port per round, regardless of how many CONGEST units
    the payload is charged as in ``messages``).  Together with the fault
    counters they satisfy the conservation identity

        ``sent_messages == delivered_messages + dropped_messages + pending``

    where ``pending`` is the simulator's in-flight delayed-message queue
    (:meth:`~repro.core.simulator.SynchronousSimulator.pending_delayed`).
    """

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    congest_violations: int = 0
    dropped_messages: int = 0
    delayed_messages: int = 0
    sent_messages: int = 0
    delivered_messages: int = 0
    events: Dict[str, int] = field(default_factory=dict)
    phases: Dict[str, PhaseMetrics] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "congest_violations": self.congest_violations,
            "dropped_messages": self.dropped_messages,
            "delayed_messages": self.delayed_messages,
            "sent_messages": self.sent_messages,
            "delivered_messages": self.delivered_messages,
            "events": dict(self.events),
            "phases": {name: phase.as_dict() for name, phase in self.phases.items()},
        }

    def messages_per_round(self) -> float:
        """Average number of point-to-point messages per round."""
        if self.rounds == 0:
            return 0.0
        return self.messages / self.rounds


class MetricsCollector:
    """Accumulates rounds, messages, bits, events and per-phase breakdowns.

    The collector is deliberately permissive: phases may be re-entered
    (their counters keep accumulating), events are free-form counters, and
    collectors can be merged, which the experiment runner uses to aggregate
    repeated runs.
    """

    def __init__(self) -> None:
        self._total = PhaseMetrics()
        self._phases: Dict[str, PhaseMetrics] = {}
        self._events: Dict[str, int] = {}
        self._congest_violations = 0
        self._dropped_messages = 0
        self._delayed_messages = 0
        self._sent_messages = 0
        self._delivered_messages = 0
        self._current_phase: Optional[str] = None

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #
    @property
    def current_phase(self) -> Optional[str]:
        return self._current_phase

    def start_phase(self, name: str) -> None:
        """Start (or resume) attributing costs to ``name``."""
        self._phases.setdefault(name, PhaseMetrics())
        self._current_phase = name

    def end_phase(self) -> None:
        """Stop attributing costs to any phase."""
        self._current_phase = None

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager variant of :meth:`start_phase` / :meth:`end_phase`."""
        return _PhaseContext(self, name)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_round(self, count: int = 1) -> None:
        """Record that ``count`` synchronous rounds elapsed."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._total.rounds += count
        if self._current_phase is not None:
            self._phases[self._current_phase].rounds += count

    def record_message(self, bits: int = 0, count: int = 1) -> None:
        """Record ``count`` point-to-point messages totalling ``bits`` bits."""
        if count < 0 or bits < 0:
            raise ValueError("message counts and bits must be non-negative")
        self._total.messages += count
        self._total.bits += bits
        if self._current_phase is not None:
            phase = self._phases[self._current_phase]
            phase.messages += count
            phase.bits += bits

    def record_congest_violation(self, count: int = 1) -> None:
        """Record a message that exceeded the configured CONGEST bit budget."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._congest_violations += count

    def record_dropped(self, count: int = 1) -> None:
        """Record ``count`` messages lost to fault injection."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._dropped_messages += count

    def record_delayed(self, count: int = 1) -> None:
        """Record ``count`` messages delayed by fault injection."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._delayed_messages += count

    def record_sent(self, count: int = 1) -> None:
        """Record ``count`` physical messages handed to the network."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._sent_messages += count

    def record_delivered(self, count: int = 1) -> None:
        """Record ``count`` physical messages placed into an inbox."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._delivered_messages += count

    def record_event(self, name: str, count: int = 1) -> None:
        """Record a free-form named event (e.g. ``"walk-collision"``)."""
        self._events[name] = self._events.get(name, 0) + count

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def rounds(self) -> int:
        return self._total.rounds

    @property
    def messages(self) -> int:
        return self._total.messages

    @property
    def bits(self) -> int:
        return self._total.bits

    @property
    def congest_violations(self) -> int:
        return self._congest_violations

    @property
    def dropped_messages(self) -> int:
        return self._dropped_messages

    @property
    def delayed_messages(self) -> int:
        return self._delayed_messages

    @property
    def sent_messages(self) -> int:
        return self._sent_messages

    @property
    def delivered_messages(self) -> int:
        return self._delivered_messages

    def event_count(self, name: str) -> int:
        return self._events.get(name, 0)

    def phase_names(self) -> Iterator[str]:
        return iter(self._phases)

    def phase_metrics(self, name: str) -> PhaseMetrics:
        return self._phases[name]

    def snapshot(self) -> Metrics:
        """Return a copy of the current totals as a :class:`Metrics`."""
        return Metrics(
            rounds=self._total.rounds,
            messages=self._total.messages,
            bits=self._total.bits,
            congest_violations=self._congest_violations,
            dropped_messages=self._dropped_messages,
            delayed_messages=self._delayed_messages,
            sent_messages=self._sent_messages,
            delivered_messages=self._delivered_messages,
            events=dict(self._events),
            phases={
                name: PhaseMetrics(p.rounds, p.messages, p.bits)
                for name, p in self._phases.items()
            },
        )

    def merge(self, other: "MetricsCollector") -> None:
        """Accumulate the totals of ``other`` into this collector."""
        snap = other.snapshot()
        self.merge_metrics(snap)

    def merge_metrics(self, snap: Metrics) -> None:
        """Accumulate a :class:`Metrics` snapshot into this collector."""
        self._total.rounds += snap.rounds
        self._total.messages += snap.messages
        self._total.bits += snap.bits
        self._congest_violations += snap.congest_violations
        self._dropped_messages += snap.dropped_messages
        self._delayed_messages += snap.delayed_messages
        self._sent_messages += snap.sent_messages
        self._delivered_messages += snap.delivered_messages
        for name, count in snap.events.items():
            self._events[name] = self._events.get(name, 0) + count
        for name, phase in snap.phases.items():
            self._phases.setdefault(name, PhaseMetrics()).merge(phase)


class _PhaseContext:
    """Context manager returned by :meth:`MetricsCollector.phase`."""

    def __init__(self, collector: MetricsCollector, name: str) -> None:
        self._collector = collector
        self._name = name
        self._previous: Optional[str] = None

    def __enter__(self) -> MetricsCollector:
        self._previous = self._collector.current_phase
        self._collector.start_phase(self._name)
        return self._collector

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is None:
            self._collector.end_phase()
        else:
            self._collector.start_phase(self._previous)
