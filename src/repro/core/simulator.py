"""Round-synchronous CONGEST simulator.

The simulator realises the paper's execution model (Section 2):

* time is slotted into globally synchronous rounds;
* in each round every node may send at most one message through each of its
  ports, and the message should fit in ``O(log n)`` bits (optionally
  enforced);
* messages sent in round ``r`` are delivered at the start of round ``r+1``;
* local computation is free — we only count rounds, messages and bits.

Nodes are :class:`~repro.core.node.ProtocolNode` instances, one per vertex
of a :class:`~repro.graphs.topology.Topology`.  The simulator never reveals
node indices to the protocol code; the only interface between neighbours is
the port-numbered message exchange.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.topology import Topology
from .errors import CongestViolationError, SimulationError
from .faults import DELIVER, FaultAdversary, active_fault_factory
from .messages import Message, congest_budget_bits
from .metrics import Metrics, MetricsCollector
from .node import Outbox, ProtocolNode
from .rng import spawn_child_rngs
from .tracing import NullTraceRecorder, TraceRecorder

__all__ = ["SimulationResult", "SynchronousSimulator", "build_nodes", "run_protocol"]

#: Factory signature: ``factory(index, num_ports, rng) -> ProtocolNode``.
NodeFactory = Callable[[int, int, random.Random], ProtocolNode]


@dataclass
class SimulationResult:
    """Outcome of a simulator run.

    ``rounds_executed`` counts the rounds executed by the :meth:`~SynchronousSimulator.run`
    call that produced this result; ``total_rounds`` is the simulator's
    lifetime round counter.  The two differ when ``run`` is invoked more
    than once on the same simulator (phase-structured protocols).
    """

    nodes: List[ProtocolNode]
    metrics: Metrics
    rounds_executed: int
    all_halted: bool
    topology: Topology
    trace: Optional[TraceRecorder] = None
    node_results: List[Dict[str, object]] = field(default_factory=list)
    total_rounds: int = 0

    def results(self) -> List[Dict[str, object]]:
        """Per-node protocol results (cached at the end of the run)."""
        if not self.node_results:
            self.node_results = [node.result() for node in self.nodes]
        return self.node_results


def build_nodes(
    topology: Topology,
    factory: NodeFactory,
    seed: Optional[int] = None,
) -> List[ProtocolNode]:
    """Instantiate one protocol node per vertex with independent RNGs.

    The factory receives the node index purely so that callers can build
    heterogeneous networks in tests; protocol implementations themselves
    must not use it (anonymity).
    """
    rngs = spawn_child_rngs(seed, topology.num_nodes)
    nodes: List[ProtocolNode] = []
    for index in range(topology.num_nodes):
        node = factory(index, topology.degree(index), rngs[index])
        nodes.append(node)
    return nodes


class SynchronousSimulator:
    """Drives a set of protocol nodes over a topology, round by round."""

    def __init__(
        self,
        topology: Topology,
        nodes: Sequence[ProtocolNode],
        *,
        metrics: Optional[MetricsCollector] = None,
        trace: Optional[TraceRecorder] = None,
        enforce_congest: bool = False,
        congest_bits: Optional[int] = None,
        count_bits: bool = True,
        adversary: Optional[FaultAdversary] = None,
    ) -> None:
        if len(nodes) != topology.num_nodes:
            raise SimulationError(
                f"expected {topology.num_nodes} nodes, got {len(nodes)}"
            )
        for index, node in enumerate(nodes):
            if node.num_ports != topology.degree(index):
                raise SimulationError(
                    f"node {index} has {node.num_ports} ports but degree "
                    f"{topology.degree(index)} in the topology"
                )
        self.topology = topology
        self.nodes = list(nodes)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.trace = trace if trace is not None else NullTraceRecorder()
        self.enforce_congest = enforce_congest
        self.count_bits = count_bits
        self._congest_bits = (
            congest_bits
            if congest_bits is not None
            else congest_budget_bits(topology.num_nodes)
        )
        self._round = 0
        # endpoint_table[u][p - 1] == (neighbour, neighbour_port); resolved
        # once here so the per-message delivery loop is pure indexing.
        self._endpoints = topology.endpoint_table()
        # Inboxes are double-buffered: the spare buffer is cleared and
        # refilled each round instead of allocating n fresh dicts per round.
        # Consequently an inbox dict handed to ``node.step`` is only valid
        # for the duration of that call; nodes must copy anything they keep.
        self._inboxes: List[Dict[int, Message]] = [
            {} for _ in range(topology.num_nodes)
        ]
        self._spare_inboxes: List[Dict[int, Message]] = [
            {} for _ in range(topology.num_nodes)
        ]
        # Fault injection (repro.dynamics): an explicit adversary wins;
        # otherwise the ambient fault scope supplies one, so experiment
        # drivers can perturb protocol entry points that construct their
        # own simulators.  ``None`` keeps the delivery loop on the
        # unperturbed hot path.
        if adversary is None:
            factory = active_fault_factory()
            if factory is not None:
                adversary = factory()
        self._adversary = adversary
        #: arrival round -> [(receiver, receiver_port, message), ...]
        self._delayed: Dict[int, List[Tuple[int, int, Message]]] = {}
        if adversary is not None:
            adversary.attach(self.topology, self.metrics, self.trace)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def current_round(self) -> int:
        """Index of the next round to execute."""
        return self._round

    @property
    def congest_bits(self) -> int:
        """Per-message bit budget used for CONGEST validation."""
        return self._congest_bits

    @property
    def adversary(self) -> Optional[FaultAdversary]:
        """The fault adversary perturbing deliveries, if any."""
        return self._adversary

    def all_halted(self) -> bool:
        return all(node.halted for node in self.nodes)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_round(self) -> None:
        """Execute exactly one synchronous round."""
        round_index = self._round
        adversary = self._adversary
        if adversary is not None:
            adversary.begin_round(round_index)
        inboxes = self._inboxes
        outboxes: List[Outbox] = []
        empty: Outbox = {}
        for index, node in enumerate(self.nodes):
            if node.halted or (
                adversary is not None
                and not adversary.node_active(round_index, index)
            ):
                outboxes.append(empty)
                continue
            outbox = node.step(round_index, inboxes[index]) or {}
            self._validate_outbox(index, node, outbox)
            outboxes.append(outbox)

        # Deliver: messages sent in this round arrive at the start of the
        # next one.  The spare buffers from two rounds ago are recycled, and
        # metrics are accumulated locally and recorded once per round.
        next_inboxes = self._spare_inboxes
        for inbox in next_inboxes:
            inbox.clear()
        if adversary is not None:
            # Adversary-mediated delivery does its own metrics accounting.
            self._deliver_with_adversary(round_index, outboxes, next_inboxes)
        else:
            # Unperturbed hot path: kept free of per-message branches.
            endpoints = self._endpoints
            congest_budget = self._congest_bits
            total_count = 0
            total_bits = 0
            for index, outbox in enumerate(outboxes):
                if not outbox:
                    continue
                node_endpoints = endpoints[index]
                for port, message in outbox.items():
                    neighbor, neighbor_port = node_endpoints[port - 1]
                    next_inboxes[neighbor][neighbor_port] = message
                    bits = self._message_bits(message)
                    units = getattr(message, "congest_units", None)
                    count = int(units()) if callable(units) else 1
                    total_count += max(1, count)
                    total_bits += bits
                    if bits > congest_budget:
                        self.metrics.record_congest_violation()
                        if self.enforce_congest:
                            self.metrics.record_message(bits=total_bits, count=total_count)
                            raise CongestViolationError(
                                f"node {index} sent {bits} bits through port {port} "
                                f"in round {round_index} (budget {congest_budget})"
                            )
            if total_count:
                self.metrics.record_message(bits=total_bits, count=total_count)

        self._spare_inboxes = inboxes
        self._inboxes = next_inboxes
        self.metrics.record_round()
        self._round += 1

    def _deliver_with_adversary(
        self,
        round_index: int,
        outboxes: Sequence[Outbox],
        next_inboxes: List[Dict[int, Message]],
    ) -> None:
        """Adversary-mediated delivery of this round's outboxes.

        Every sent message is counted in the metrics (the sender paid for
        it) and then ruled on by the adversary: delivered, dropped, or
        queued for a later round.  Delayed messages land after the fresh
        traffic of their arrival round; if the target port is occupied the
        delayed copy is dropped (the port carries one message per round —
        CONGEST holds on the receiving side too) and counted as such.
        """
        adversary = self._adversary
        endpoints = self._endpoints
        congest_budget = self._congest_bits
        trace = self.trace
        total_count = 0
        total_bits = 0
        dropped = 0
        delayed = 0
        for index, outbox in enumerate(outboxes):
            if not outbox:
                continue
            node_endpoints = endpoints[index]
            for port, message in outbox.items():
                neighbor, neighbor_port = node_endpoints[port - 1]
                bits = self._message_bits(message)
                units = getattr(message, "congest_units", None)
                count = int(units()) if callable(units) else 1
                total_count += max(1, count)
                total_bits += bits
                if bits > congest_budget:
                    self.metrics.record_congest_violation()
                    if self.enforce_congest:
                        self.metrics.record_message(bits=total_bits, count=total_count)
                        raise CongestViolationError(
                            f"node {index} sent {bits} bits through port {port} "
                            f"in round {round_index} (budget {congest_budget})"
                        )
                verdict = adversary.on_message(
                    round_index, index, port, neighbor, neighbor_port, message
                )
                if verdict == DELIVER:
                    next_inboxes[neighbor][neighbor_port] = message
                elif verdict < 0:
                    dropped += 1
                    trace.record(
                        round_index,
                        "message-dropped",
                        node=index,
                        port=port,
                        receiver=neighbor,
                    )
                else:
                    delayed += 1
                    self._delayed.setdefault(round_index + 1 + verdict, []).append(
                        (neighbor, neighbor_port, message)
                    )
                    trace.record(
                        round_index,
                        "message-delayed",
                        node=index,
                        port=port,
                        receiver=neighbor,
                        delay=verdict,
                    )

        # Delayed messages due now (scheduled for the start of round
        # ``round_index + 1``, like the fresh traffic above).
        for neighbor, neighbor_port, message in self._delayed.pop(round_index + 1, ()):
            if neighbor_port in next_inboxes[neighbor]:
                dropped += 1
                trace.record(
                    round_index,
                    "message-dropped",
                    node=neighbor,
                    port=neighbor_port,
                    reason="delay-collision",
                )
            else:
                next_inboxes[neighbor][neighbor_port] = message

        if total_count:
            self.metrics.record_message(bits=total_bits, count=total_count)
        if dropped:
            self.metrics.record_dropped(dropped)
        if delayed:
            self.metrics.record_delayed(delayed)

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Optional[Callable[["SynchronousSimulator"], bool]] = None,
        require_halt: bool = False,
    ) -> SimulationResult:
        """Run until every node halts, ``stop_when`` fires, or ``max_rounds``.

        ``stop_when`` is evaluated after each round with the simulator as
        argument; it allows drivers to stop revocable protocols (which
        never halt on their own) once an external condition is met.

        The returned :class:`SimulationResult` reports the rounds executed
        by *this* call in ``rounds_executed`` and the simulator's lifetime
        counter in ``total_rounds`` (relevant for phase-structured drivers
        that call ``run`` several times on one simulator).
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be non-negative, got {max_rounds}")
        executed = 0
        while executed < max_rounds:
            if self.all_halted():
                break
            self.run_round()
            executed += 1
            if stop_when is not None and stop_when(self):
                break
        all_halted = self.all_halted()
        if require_halt and not all_halted:
            raise SimulationError(
                f"not all nodes halted within {max_rounds} rounds"
            )
        return SimulationResult(
            nodes=self.nodes,
            metrics=self.metrics.snapshot(),
            rounds_executed=executed,
            total_rounds=self._round,
            all_halted=all_halted,
            topology=self.topology,
            trace=self.trace if isinstance(self.trace, TraceRecorder) else None,
            node_results=[node.result() for node in self.nodes],
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _validate_outbox(self, index: int, node: ProtocolNode, outbox: Outbox) -> None:
        for port in outbox:
            if not (1 <= port <= node.num_ports):
                raise SimulationError(
                    f"node {index} tried to send through port {port} but has "
                    f"ports 1..{node.num_ports}"
                )

    def _message_bits(self, message: Message) -> int:
        if not self.count_bits:
            return 0
        size = getattr(message, "size_bits", None)
        if callable(size):
            return int(size(self.topology.num_nodes))
        # Fall back to a single CONGEST word for foreign message objects.
        return max(1, self._congest_bits)


def run_protocol(
    topology: Topology,
    factory: NodeFactory,
    *,
    max_rounds: int,
    seed: Optional[int] = None,
    metrics: Optional[MetricsCollector] = None,
    trace: Optional[TraceRecorder] = None,
    enforce_congest: bool = False,
    stop_when: Optional[Callable[[SynchronousSimulator], bool]] = None,
    require_halt: bool = False,
    adversary: Optional[FaultAdversary] = None,
) -> SimulationResult:
    """Convenience wrapper: build nodes, run, and return the result."""
    nodes = build_nodes(topology, factory, seed=seed)
    simulator = SynchronousSimulator(
        topology,
        nodes,
        metrics=metrics,
        trace=trace,
        enforce_congest=enforce_congest,
        adversary=adversary,
    )
    return simulator.run(
        max_rounds,
        stop_when=stop_when,
        require_halt=require_halt,
    )
