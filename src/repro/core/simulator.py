"""Round-synchronous CONGEST simulator.

The simulator realises the paper's execution model (Section 2):

* time is slotted into globally synchronous rounds;
* in each round every node may send at most one message through each of its
  ports, and the message should fit in ``O(log n)`` bits (optionally
  enforced);
* messages sent in round ``r`` are delivered at the start of round ``r+1``;
* local computation is free — we only count rounds, messages and bits.

Nodes are :class:`~repro.core.node.ProtocolNode` instances, one per vertex
of a :class:`~repro.graphs.topology.Topology`.  The simulator never reveals
node indices to the protocol code; the only interface between neighbours is
the port-numbered message exchange.

Backends
--------

Two interchangeable execution cores drive the same contract:

* ``"round"`` — the original loop: every non-halted node is stepped every
  round.
* ``"event"`` — the fast core: nodes that declare themselves *quiescent*
  (:meth:`~repro.core.node.ProtocolNode.quiescent_until`) and have an
  empty inbox are skipped, and rounds in which **no** node is active, no
  adversary is attached, no ``stop_when`` is set and no delayed message is
  in flight are fast-forwarded in O(1).

Because quiescence is opt-in and declared only for provably no-op steps,
the two backends produce bit-identical metrics, traces and results; the
event backend is simply faster on workloads with long quiet stretches.
``backend="auto"`` (the default) resolves through the ambient backend
scope (:func:`backend_scope` / :func:`set_default_backend`) and falls back
to the event core.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..graphs.topology import Topology
from .errors import CongestViolationError, SimulationError
from .faults import DELIVER, FaultAdversary, active_fault_factory
from .messages import Message, congest_budget_bits
from .metrics import Metrics, MetricsCollector
from .node import Outbox, ProtocolNode
from .rng import spawn_child_rngs
from .tracing import NullTraceRecorder, TraceRecorder, active_trace

__all__ = [
    "BACKENDS",
    "SimulationResult",
    "SynchronousSimulator",
    "backend_scope",
    "build_nodes",
    "default_backend",
    "run_protocol",
    "set_default_backend",
]

#: Factory signature: ``factory(index, num_ports, rng) -> ProtocolNode``.
NodeFactory = Callable[[int, int, random.Random], ProtocolNode]

#: Valid values for the ``backend`` argument / ambient backend default.
BACKENDS = ("auto", "round", "event")

#: Innermost-wins stack of scoped backend overrides (see ``backend_scope``).
_BACKEND_SCOPES: List[str] = []

#: Process-wide default, settable once per worker (see ``set_default_backend``).
_PROCESS_BACKEND = "auto"


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown simulator backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def set_default_backend(backend: str) -> None:
    """Set the process-wide backend used when simulators pass ``"auto"``.

    The parallel experiment engine calls this in its pool initializer so
    a ``--backend`` choice reaches worker processes; ``"auto"`` restores
    the built-in resolution (event core).
    """
    global _PROCESS_BACKEND
    _PROCESS_BACKEND = _check_backend(backend)


def default_backend() -> str:
    """The backend an ``"auto"`` simulator would resolve to right now."""
    backend = _BACKEND_SCOPES[-1] if _BACKEND_SCOPES else _PROCESS_BACKEND
    return "event" if backend == "auto" else backend


@contextmanager
def backend_scope(backend: str) -> Iterator[None]:
    """Route every ``backend="auto"`` simulator in the scope to ``backend``.

    Mirrors :func:`~repro.core.faults.fault_scope`: protocol entry points
    construct their own simulators internally, so experiment drivers select
    a backend ambiently rather than threading an argument through every
    protocol signature.  Scopes nest; the innermost wins.  Checkpoint task
    keys never include the backend — both cores produce bit-identical
    results, so records are interchangeable between them.
    """
    _check_backend(backend)
    _BACKEND_SCOPES.append(backend)
    try:
        yield
    finally:
        _BACKEND_SCOPES.pop()


@dataclass
class SimulationResult:
    """Outcome of a simulator run.

    ``rounds_executed`` counts the rounds executed by the :meth:`~SynchronousSimulator.run`
    call that produced this result; ``total_rounds`` is the simulator's
    lifetime round counter.  The two differ when ``run`` is invoked more
    than once on the same simulator (phase-structured protocols).
    """

    nodes: List[ProtocolNode]
    metrics: Metrics
    rounds_executed: int
    all_halted: bool
    topology: Topology
    trace: Optional[TraceRecorder] = None
    node_results: List[Dict[str, object]] = field(default_factory=list)
    total_rounds: int = 0

    def results(self) -> List[Dict[str, object]]:
        """Per-node protocol results (cached at the end of the run)."""
        if not self.node_results:
            self.node_results = [node.result() for node in self.nodes]
        return self.node_results


def build_nodes(
    topology: Topology,
    factory: NodeFactory,
    seed: Optional[int] = None,
) -> List[ProtocolNode]:
    """Instantiate one protocol node per vertex with independent RNGs.

    The factory receives the node index purely so that callers can build
    heterogeneous networks in tests; protocol implementations themselves
    must not use it (anonymity).
    """
    rngs = spawn_child_rngs(seed, topology.num_nodes)
    nodes: List[ProtocolNode] = []
    for index in range(topology.num_nodes):
        node = factory(index, topology.degree(index), rngs[index])
        nodes.append(node)
    return nodes


class SynchronousSimulator:
    """Drives a set of protocol nodes over a topology, round by round."""

    def __init__(
        self,
        topology: Topology,
        nodes: Sequence[ProtocolNode],
        *,
        metrics: Optional[MetricsCollector] = None,
        trace: Optional[TraceRecorder] = None,
        enforce_congest: bool = False,
        congest_bits: Optional[int] = None,
        count_bits: bool = True,
        adversary: Optional[FaultAdversary] = None,
        backend: str = "auto",
    ) -> None:
        if len(nodes) != topology.num_nodes:
            raise SimulationError(
                f"expected {topology.num_nodes} nodes, got {len(nodes)}"
            )
        for index, node in enumerate(nodes):
            if node.num_ports != topology.degree(index):
                raise SimulationError(
                    f"node {index} has {node.num_ports} ports but degree "
                    f"{topology.degree(index)} in the topology"
                )
        _check_backend(backend)
        self.backend = default_backend() if backend == "auto" else backend
        self.topology = topology
        self.nodes = list(nodes)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        # Explicit trace= wins; otherwise an ambient trace_scope recorder
        # (the route into registry-driven runs, e.g. `elect --trace`);
        # otherwise the no-op recorder.
        if trace is None:
            trace = active_trace()
        self.trace = trace if trace is not None else NullTraceRecorder()
        self.enforce_congest = enforce_congest
        self.count_bits = count_bits
        self._congest_bits = (
            congest_bits
            if congest_bits is not None
            else congest_budget_bits(topology.num_nodes)
        )
        self._round = 0
        # endpoint_table[u][p - 1] == (neighbour, neighbour_port); resolved
        # once here so the per-message delivery loop is pure indexing.
        self._endpoints = topology.endpoint_table()
        # Inboxes are double-buffered: the spare buffer is cleared and
        # refilled each round instead of allocating n fresh dicts per round.
        # Consequently an inbox dict handed to ``node.step`` is only valid
        # for the duration of that call; nodes must copy anything they keep.
        self._inboxes: List[Dict[int, Message]] = [
            {} for _ in range(topology.num_nodes)
        ]
        self._spare_inboxes: List[Dict[int, Message]] = [
            {} for _ in range(topology.num_nodes)
        ]
        # Fault injection (repro.dynamics): an explicit adversary wins;
        # otherwise the ambient fault scope supplies one, so experiment
        # drivers can perturb protocol entry points that construct their
        # own simulators.  ``None`` keeps the delivery loop on the
        # unperturbed hot path.
        if adversary is None:
            factory = active_fault_factory()
            if factory is not None:
                adversary = factory()
        self._adversary = adversary
        #: arrival round -> [(receiver, receiver_port, message), ...]
        self._delayed: Dict[int, List[Tuple[int, int, Message]]] = {}
        #: Event backend: per-node wakeup rounds (flat array, refreshed at
        #: every ``run`` entry and after each executed step).  A node is
        #: skipped while its inbox is empty and ``wake > current round``.
        self._wake: List[int] = [0] * topology.num_nodes
        if adversary is not None:
            adversary.attach(self.topology, self.metrics, self.trace)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def current_round(self) -> int:
        """Index of the next round to execute."""
        return self._round

    @property
    def congest_bits(self) -> int:
        """Per-message bit budget used for CONGEST validation."""
        return self._congest_bits

    @property
    def adversary(self) -> Optional[FaultAdversary]:
        """The fault adversary perturbing deliveries, if any."""
        return self._adversary

    def all_halted(self) -> bool:
        return all(node.halted for node in self.nodes)

    def pending_delayed(self) -> int:
        """Number of adversary-delayed messages still in flight.

        These are counted in ``sent_messages`` (and ``delayed_messages``)
        but in neither ``delivered_messages`` nor ``dropped_messages`` yet:
        they close the conservation identity ``sent == delivered + dropped
        + pending`` for runs that end with traffic still queued.  The queue
        is keyed by absolute arrival round, so a subsequent :meth:`run`
        call on the same simulator keeps draining it.
        """
        return sum(len(batch) for batch in self._delayed.values())

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_round(self) -> None:
        """Execute exactly one synchronous round (round-backend semantics)."""
        round_index = self._round
        adversary = self._adversary
        if adversary is not None:
            adversary.begin_round(round_index)
        inboxes = self._inboxes
        outboxes: List[Outbox] = []
        empty: Outbox = {}
        for index, node in enumerate(self.nodes):
            if node.halted or (
                adversary is not None
                and not adversary.node_active(round_index, index)
            ):
                outboxes.append(empty)
                continue
            outbox = node.step(round_index, inboxes[index]) or {}
            self._validate_outbox(index, node, outbox)
            outboxes.append(outbox)
        self._deliver_and_finish(round_index, enumerate(outboxes))

    def _deliver_and_finish(
        self,
        round_index: int,
        senders: Iterable[Tuple[int, Outbox]],
    ) -> None:
        """Deliver this round's outboxes, swap buffers, close the round.

        Round state is committed *before* any CONGEST enforcement error is
        raised: the violating message is withheld (never placed in an
        inbox), everything else delivers, the buffers swap and the round
        counter advances — so a caller that catches
        :class:`CongestViolationError` observes a consistent simulator.
        """
        inboxes = self._inboxes
        next_inboxes = self._spare_inboxes
        for inbox in next_inboxes:
            inbox.clear()
        if self._adversary is not None:
            violation = self._deliver_with_adversary(
                round_index, senders, next_inboxes
            )
        else:
            violation = self._deliver_plain(round_index, senders, next_inboxes)
        self._spare_inboxes = inboxes
        self._inboxes = next_inboxes
        self.metrics.record_round()
        self._round += 1
        if violation is not None:
            index, port, bits = violation
            raise CongestViolationError(
                f"node {index} sent {bits} bits through port {port} "
                f"in round {round_index} (budget {self._congest_bits})"
            )

    def _deliver_plain(
        self,
        round_index: int,
        senders: Iterable[Tuple[int, Outbox]],
        next_inboxes: List[Dict[int, Message]],
    ) -> Optional[Tuple[int, int, int]]:
        """Unperturbed delivery hot path: kept free of per-message branches.

        Returns the first enforced CONGEST violation as ``(sender, port,
        bits)``, or ``None``.  Violating messages are always counted (the
        sender paid for them); under enforcement they are withheld from the
        receiver and counted as dropped.
        """
        endpoints = self._endpoints
        congest_budget = self._congest_bits
        enforce = self.enforce_congest
        total_count = 0
        total_bits = 0
        physical = 0
        rejected = 0
        violation: Optional[Tuple[int, int, int]] = None
        for index, outbox in senders:
            if not outbox:
                continue
            node_endpoints = endpoints[index]
            for port, message in outbox.items():
                bits = self._message_bits(message)
                units = getattr(message, "congest_units", None)
                count = int(units()) if callable(units) else 1
                total_count += max(1, count)
                total_bits += bits
                physical += 1
                if bits > congest_budget:
                    self.metrics.record_congest_violation()
                    if enforce:
                        rejected += 1
                        if violation is None:
                            violation = (index, port, bits)
                        continue
                neighbor, neighbor_port = node_endpoints[port - 1]
                next_inboxes[neighbor][neighbor_port] = message
        if physical:
            self.metrics.record_message(bits=total_bits, count=total_count)
            self.metrics.record_sent(physical)
            self.metrics.record_delivered(physical - rejected)
        if rejected:
            self.metrics.record_dropped(rejected)
        return violation

    def _deliver_with_adversary(
        self,
        round_index: int,
        senders: Iterable[Tuple[int, Outbox]],
        next_inboxes: List[Dict[int, Message]],
    ) -> Optional[Tuple[int, int, int]]:
        """Adversary-mediated delivery of this round's outboxes.

        Every sent message is counted in the metrics (the sender paid for
        it) and then ruled on by the adversary: delivered, dropped, or
        queued for a later round.  Delayed messages land after the fresh
        traffic of their arrival round; if the target port is occupied the
        delayed copy is dropped (the port carries one message per round —
        CONGEST holds on the receiving side too) and counted as such.
        Returns the first enforced CONGEST violation (see
        :meth:`_deliver_plain`); an enforced violating message is withheld
        before the adversary rules on it.
        """
        adversary = self._adversary
        endpoints = self._endpoints
        congest_budget = self._congest_bits
        enforce = self.enforce_congest
        trace = self.trace
        total_count = 0
        total_bits = 0
        physical = 0
        delivered = 0
        dropped = 0
        delayed = 0
        violation: Optional[Tuple[int, int, int]] = None
        for index, outbox in senders:
            if not outbox:
                continue
            node_endpoints = endpoints[index]
            for port, message in outbox.items():
                neighbor, neighbor_port = node_endpoints[port - 1]
                bits = self._message_bits(message)
                units = getattr(message, "congest_units", None)
                count = int(units()) if callable(units) else 1
                total_count += max(1, count)
                total_bits += bits
                physical += 1
                if bits > congest_budget:
                    self.metrics.record_congest_violation()
                    if enforce:
                        dropped += 1
                        if violation is None:
                            violation = (index, port, bits)
                        continue
                verdict = adversary.on_message(
                    round_index, index, port, neighbor, neighbor_port, message
                )
                if verdict == DELIVER:
                    next_inboxes[neighbor][neighbor_port] = message
                    delivered += 1
                elif verdict < 0:
                    dropped += 1
                    trace.record(
                        round_index,
                        "message-dropped",
                        node=index,
                        port=port,
                        receiver=neighbor,
                    )
                else:
                    delayed += 1
                    self._delayed.setdefault(round_index + 1 + verdict, []).append(
                        (neighbor, neighbor_port, message)
                    )
                    trace.record(
                        round_index,
                        "message-delayed",
                        node=index,
                        port=port,
                        receiver=neighbor,
                        delay=verdict,
                    )

        # Delayed messages due now (scheduled for the start of round
        # ``round_index + 1``, like the fresh traffic above).
        for neighbor, neighbor_port, message in self._delayed.pop(round_index + 1, ()):
            if neighbor_port in next_inboxes[neighbor]:
                dropped += 1
                trace.record(
                    round_index,
                    "message-dropped",
                    node=neighbor,
                    port=neighbor_port,
                    reason="delay-collision",
                )
            else:
                next_inboxes[neighbor][neighbor_port] = message
                delivered += 1

        if physical:
            self.metrics.record_message(bits=total_bits, count=total_count)
            self.metrics.record_sent(physical)
        if delivered:
            self.metrics.record_delivered(delivered)
        if dropped:
            self.metrics.record_dropped(dropped)
        if delayed:
            self.metrics.record_delayed(delayed)
        return violation

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Optional[Callable[["SynchronousSimulator"], bool]] = None,
        require_halt: bool = False,
    ) -> SimulationResult:
        """Run until every node halts, ``stop_when`` fires, or ``max_rounds``.

        ``stop_when`` is evaluated after each round with the simulator as
        argument; it allows drivers to stop revocable protocols (which
        never halt on their own) once an external condition is met.

        The returned :class:`SimulationResult` reports the rounds executed
        by *this* call in ``rounds_executed`` and the simulator's lifetime
        counter in ``total_rounds`` (relevant for phase-structured drivers
        that call ``run`` several times on one simulator).
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be non-negative, got {max_rounds}")
        if self.backend == "event":
            executed = self._run_event(max_rounds, stop_when)
        else:
            executed = self._run_round_loop(max_rounds, stop_when)
        all_halted = self.all_halted()
        if require_halt and not all_halted:
            raise SimulationError(
                f"not all nodes halted within {max_rounds} rounds"
            )
        return SimulationResult(
            nodes=self.nodes,
            metrics=self.metrics.snapshot(),
            rounds_executed=executed,
            total_rounds=self._round,
            all_halted=all_halted,
            topology=self.topology,
            trace=self.trace if isinstance(self.trace, TraceRecorder) else None,
            node_results=[node.result() for node in self.nodes],
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _run_round_loop(
        self,
        max_rounds: int,
        stop_when: Optional[Callable[["SynchronousSimulator"], bool]],
    ) -> int:
        """The original backend: step every non-halted node every round."""
        executed = 0
        while executed < max_rounds:
            if self.all_halted():
                break
            self.run_round()
            executed += 1
            if stop_when is not None and stop_when(self):
                break
            if self._terminated_by_crashes():
                break
        return executed

    def _run_event(
        self,
        max_rounds: int,
        stop_when: Optional[Callable[["SynchronousSimulator"], bool]],
    ) -> int:
        """The event-driven backend: skip quiescent nodes and empty rounds.

        Per round, only *active* nodes are stepped: a node is active when
        it has not halted and either its inbox is non-empty or its declared
        quiescence horizon (:meth:`ProtocolNode.quiescent_until`) has been
        reached.  When no node is active — and no adversary, ``stop_when``
        or in-flight delayed message can make a round observable — the
        simulator fast-forwards to the earliest wakeup in O(1), recording
        the skipped rounds in one batch.
        """
        nodes = self.nodes
        wake = self._wake
        for index, node in enumerate(nodes):
            if not node.halted:
                wake[index] = node.quiescent_until(self._round)
        executed = 0
        while executed < max_rounds:
            if self.all_halted():
                break
            round_index = self._round
            adversary = self._adversary
            inboxes = self._inboxes
            if adversary is None and stop_when is None and not self._delayed:
                next_wake: Optional[int] = None
                runnable = False
                for index, node in enumerate(nodes):
                    if node.halted:
                        continue
                    if inboxes[index] or wake[index] <= round_index:
                        runnable = True
                        break
                    if next_wake is None or wake[index] < next_wake:
                        next_wake = wake[index]
                if not runnable:
                    if next_wake is None:  # pragma: no cover - all_halted above
                        break
                    jump = min(next_wake - round_index, max_rounds - executed)
                    self.metrics.record_round(jump)
                    self._round += jump
                    executed += jump
                    continue
            if adversary is not None:
                adversary.begin_round(round_index)
            senders: List[Tuple[int, Outbox]] = []
            for index, node in enumerate(nodes):
                if node.halted:
                    continue
                inbox = inboxes[index]
                if not inbox and wake[index] > round_index:
                    continue
                if adversary is not None and not adversary.node_active(
                    round_index, index
                ):
                    continue
                outbox = node.step(round_index, inbox) or {}
                wake[index] = node.quiescent_until(round_index + 1)
                if outbox:
                    self._validate_outbox(index, node, outbox)
                    senders.append((index, outbox))
            self._deliver_and_finish(round_index, senders)
            executed += 1
            if stop_when is not None and stop_when(self):
                break
            if self._terminated_by_crashes():
                break
        return executed

    def _terminated_by_crashes(self) -> bool:
        """Whether the round just executed left nobody able to act again.

        True when an adversary is attached, no delayed message is in
        flight, and every node has either halted or crashed for good
        (:meth:`FaultAdversary.node_crashed`) as of the round just run —
        continuing would only execute empty rounds until ``max_rounds``.
        """
        adversary = self._adversary
        if adversary is None or self._delayed:
            return False
        round_index = self._round - 1
        return all(
            node.halted or adversary.node_crashed(round_index, index)
            for index, node in enumerate(self.nodes)
        )

    def _validate_outbox(self, index: int, node: ProtocolNode, outbox: Outbox) -> None:
        for port in outbox:
            if not (1 <= port <= node.num_ports):
                raise SimulationError(
                    f"node {index} tried to send through port {port} but has "
                    f"ports 1..{node.num_ports}"
                )

    def _message_bits(self, message: Message) -> int:
        if not self.count_bits:
            return 0
        size = getattr(message, "size_bits", None)
        if callable(size):
            return int(size(self.topology.num_nodes))
        # Fall back to a single CONGEST word for foreign message objects.
        return max(1, self._congest_bits)


def run_protocol(
    topology: Topology,
    factory: NodeFactory,
    *,
    max_rounds: int,
    seed: Optional[int] = None,
    metrics: Optional[MetricsCollector] = None,
    trace: Optional[TraceRecorder] = None,
    enforce_congest: bool = False,
    stop_when: Optional[Callable[[SynchronousSimulator], bool]] = None,
    require_halt: bool = False,
    adversary: Optional[FaultAdversary] = None,
    backend: str = "auto",
) -> SimulationResult:
    """Convenience wrapper: build nodes, run, and return the result."""
    nodes = build_nodes(topology, factory, seed=seed)
    simulator = SynchronousSimulator(
        topology,
        nodes,
        metrics=metrics,
        trace=trace,
        enforce_congest=enforce_congest,
        adversary=adversary,
        backend=backend,
    )
    return simulator.run(
        max_rounds,
        stop_when=stop_when,
        require_halt=require_halt,
    )
