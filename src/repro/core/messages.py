"""Message model and CONGEST bit accounting.

The paper analyses complexity in the CONGEST model: in every synchronous
round a node may send one message of ``O(log n)`` bits through each of its
ports.  To measure message *and* bit complexity of the protocols we give
every message a ``size_bits`` method.  Protocol-specific messages are plain
dataclasses deriving from :class:`Message`; the default size computation
walks the dataclass fields and charges a standard encoding cost per field
(integers cost their binary length, booleans one bit, ``None`` nothing).

Messages are value objects: they are immutable (frozen dataclasses) so the
simulator can safely deliver the same object it was handed without copying.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "Message",
    "bits_for_int",
    "bits_for_value",
    "id_space_bits",
    "congest_budget_bits",
]


def bits_for_int(value: int) -> int:
    """Number of bits needed to encode a non-negative integer.

    Zero still occupies one bit.  Negative integers are encoded with a sign
    bit plus the magnitude (the protocols never send negative integers, but
    the accounting should not crash if one slips through during debugging).
    """
    if value == 0:
        return 1
    magnitude = abs(int(value))
    bits = magnitude.bit_length()
    return bits + (1 if value < 0 else 0)


def bits_for_value(value: Any) -> int:
    """Encoding cost, in bits, of a single message field."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return bits_for_int(value)
    if isinstance(value, float):
        # Potentials in the diffusion protocol are the only floats that
        # travel on links; the paper transmits them bit by bit with the
        # precision needed for the current estimate.  We charge a 64-bit
        # fixed-point encoding, which upper-bounds what the protocol needs
        # for every network size we simulate.
        return 64
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (tuple, list, frozenset, set)):
        return sum(bits_for_value(item) for item in value)
    raise TypeError(f"cannot account bits for message field of type {type(value)!r}")


def id_space_bits(n: int) -> int:
    """Bits needed for an ID drawn from ``{1..n^4}`` (Section 4)."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return max(1, math.ceil(4 * math.log2(max(2, n))))


def congest_budget_bits(n: int, factor: int = 8) -> int:
    """Per-message bit budget ``factor * ceil(log2 n)`` used for validation.

    The CONGEST model allows ``O(log n)`` bits per message; the constant is
    not pinned down by the model, so the simulator's optional validation
    uses a configurable multiple of ``log2 n``.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return factor * max(1, math.ceil(math.log2(max(2, n))))


@dataclass(frozen=True)
class Message:
    """Base class for protocol messages.

    Subclasses are frozen dataclasses whose fields are ints, bools, floats,
    strings, ``None`` or flat tuples of those.  The default
    :meth:`size_bits` charges the sum of the field encodings plus a small
    tag identifying the message type on the wire (protocols multiplex
    several message kinds over the same link).
    """

    #: bits charged for the message-type tag.
    TYPE_TAG_BITS = 3

    def size_bits(self, network_size: Optional[int] = None) -> int:
        """Total encoding size of this message in bits.

        ``network_size`` is accepted for symmetry with protocols that size
        fields relative to ``n``; the default implementation ignores it.
        """
        total = self.TYPE_TAG_BITS
        for field in dataclasses.fields(self):
            total += bits_for_value(getattr(self, field.name))
        return total

    def congest_units(self) -> int:
        """How many CONGEST messages this object stands for.

        Almost always 1.  Batched messages (e.g. several random-walk tokens
        with *distinct* IDs forwarded over the same link in one round, as
        in the Gilbert et al. baseline) override this so that the measured
        message complexity charges one unit per ``O(log n)``-bit payload,
        matching how the respective papers count messages.
        """
        return 1
