"""Protocol node abstraction for the synchronous anonymous-network model.

A protocol node is *anonymous*: it does not know its own index in the
network, it only knows how many ports (communication links) it has, numbered
``1..num_ports``, exactly as in the paper's model (Section 2).  Everything
else the node knows must be passed in explicitly through its configuration —
e.g. the algorithms of Section 4 receive (linear upper bounds on) the
network size ``n``, the mixing time ``t_mix`` and the conductance ``Φ``,
while the blind protocol of Section 5.2 receives nothing at all.

The simulator drives nodes with :meth:`ProtocolNode.step`: once per
synchronous round it hands each node the messages received through its
ports during the previous round and collects the messages the node wants to
transmit in this round, as a mapping ``port -> message``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Dict, Mapping, Optional

from .messages import Message

__all__ = ["Inbox", "Outbox", "ProtocolNode", "PassiveNode"]

#: Messages received in a round, keyed by the local port they arrived on.
Inbox = Mapping[int, Message]

#: Messages to transmit in a round, keyed by the local port to send through.
Outbox = Dict[int, Message]


class ProtocolNode(ABC):
    """Base class for all protocol implementations.

    Parameters
    ----------
    num_ports:
        Number of incident links, i.e. the degree of the node.  Ports are
        numbered ``1..num_ports``.
    rng:
        Private source of randomness for this node.  All protocol decisions
        must draw from it (never from the global ``random`` module) so that
        executions are reproducible from the experiment seed.
    """

    def __init__(self, num_ports: int, rng: random.Random) -> None:
        if num_ports < 0:
            raise ValueError(f"num_ports must be non-negative, got {num_ports}")
        self.num_ports = num_ports
        self.rng = rng

    # ------------------------------------------------------------------ #
    # the synchronous-round interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        """Execute one synchronous round.

        ``round_index`` starts at 0.  ``inbox`` holds the messages that
        were transmitted to this node in round ``round_index - 1`` (empty
        in round 0).  The return value maps ports to the messages to send
        in this round; at most one message per port (CONGEST).

        The ``inbox`` mapping is only valid for the duration of this call:
        the simulator recycles inbox containers between rounds, so
        implementations that need received messages later must copy them
        (``dict(inbox)``), never store the mapping itself.
        """

    @property
    def halted(self) -> bool:
        """Whether the node has terminated its protocol.

        Irrevocable protocols eventually halt at every node; revocable
        protocols may run forever (the simulator then stops at its round
        limit).  A halted node is no longer stepped, and its last outbox is
        assumed empty.
        """
        return False

    def result(self) -> Dict[str, Any]:
        """Protocol-specific outcome of this node (flags, IDs, estimates).

        The default is an empty mapping; election protocols override it to
        expose at least ``{"leader": bool}``.
        """
        return {}

    def quiescent_until(self, round_index: int) -> int:
        """First round at or after ``round_index`` this node may act in.

        The event-driven simulator backend skips a node's steps while it is
        *quiescent*.  Returning a round ``r > round_index`` asserts that for
        every round in ``[round_index, r)`` a step with an **empty** inbox
        would return an empty outbox, draw nothing from ``self.rng`` and
        change no observable state — i.e. the step is a no-op the backend
        may elide.  An arriving message always wakes the node regardless of
        the declared horizon, and the declaration is re-queried after every
        executed step.

        The default returns ``round_index`` (never quiescent), which keeps
        the event backend bit-identical to the round backend for protocols
        that do not opt in.
        """
        return round_index

    # ------------------------------------------------------------------ #
    # small conveniences shared by protocol implementations
    # ------------------------------------------------------------------ #
    def ports(self) -> range:
        """All local port numbers, ``1..num_ports``."""
        return range(1, self.num_ports + 1)

    def random_port(self) -> int:
        """A port chosen uniformly at random (requires ``num_ports >= 1``)."""
        if self.num_ports == 0:
            raise ValueError("node has no ports")
        return self.rng.randint(1, self.num_ports)


class PassiveNode(ProtocolNode):
    """A node that never transmits and never halts.

    Useful as a placeholder in tests and as a building block for
    experiments that only exercise part of a network.
    """

    def step(self, round_index: int, inbox: Inbox) -> Outbox:  # noqa: D401
        self.last_inbox = dict(inbox)
        return {}

    def result(self) -> Dict[str, Any]:
        return {"passive": True}
