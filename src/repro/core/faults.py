"""Core fault-adversary API: the simulator's delivery hook.

The paper's execution model (Section 2) is static and reliable: every
message sent in round ``r`` arrives at the start of round ``r+1``.  The
:mod:`repro.dynamics` subsystem perturbs exactly that step.  This module
defines the *contract* between the simulator and an adversary — the
concrete adversary models live in :mod:`repro.dynamics.adversaries` so the
core keeps no dependency on the higher layers.

An adversary sees every (sender, port, receiver, port, message) delivery
attempt and rules on it:

* :data:`DELIVER` (``0``) — deliver normally next round;
* :data:`DROP` (``-1``) — the message is lost;
* any positive integer ``d`` — the message is delayed by ``d`` extra
  rounds (it arrives at the start of round ``r + 1 + d``).

It can additionally mark nodes as inactive (crash-stop): an inactive node
is not stepped and everything addressed to it is droppable by the
adversary's own :meth:`~FaultAdversary.on_message`.

Determinism contract
--------------------

Adversaries must be deterministic functions of the run seed they were
constructed with: the simulator calls the hooks in a fixed order (nodes by
index, outbox ports in insertion order), so an adversary that draws all
randomness from a seed-derived private RNG perturbs a run identically in
every process — which is what keeps adversarial sweeps bit-identical
between the serial and parallel experiment backends.

The *ambient fault scope* lets experiment drivers attach an adversary to
protocol entry points that build their own simulators internally
(``run_flooding_election`` and friends): inside ``fault_scope(factory)``
every :class:`~repro.core.simulator.SynchronousSimulator` constructed
without an explicit ``adversary`` asks ``factory()`` for one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..graphs.topology import Topology
    from .messages import Message
    from .metrics import MetricsCollector
    from .tracing import TraceRecorder

__all__ = [
    "DELIVER",
    "DROP",
    "FaultAdversary",
    "fault_scope",
    "active_fault_factory",
]

#: Verdicts of :meth:`FaultAdversary.on_message`.
DELIVER = 0
DROP = -1


class FaultAdversary:
    """Base class (and null object) for delivery-step adversaries.

    Subclasses override the hooks they need; the defaults perturb nothing,
    so the base class doubles as a no-op adversary in tests.
    """

    #: Registry / reporting name of the model.
    name: str = "null"

    def __init__(self) -> None:
        self.topology: Optional["Topology"] = None
        self.metrics: Optional["MetricsCollector"] = None
        self.trace: Optional["TraceRecorder"] = None

    def attach(
        self,
        topology: "Topology",
        metrics: "MetricsCollector",
        trace: "TraceRecorder",
    ) -> None:
        """Bind the adversary to one simulator instance.

        Called by :class:`~repro.core.simulator.SynchronousSimulator` at
        construction.  Adversaries may use ``metrics.record_event`` and
        ``trace.record`` for model-specific fault accounting (the simulator
        itself counts dropped/delayed messages); overrides must call
        ``super().attach(...)``.
        """
        self.topology = topology
        self.metrics = metrics
        self.trace = trace

    # ------------------------------------------------------------------ #
    # hooks, called by the simulator
    # ------------------------------------------------------------------ #
    def begin_round(self, round_index: int) -> None:
        """Called once at the start of every round, before nodes step."""

    def node_active(self, round_index: int, node: int) -> bool:
        """Whether ``node`` participates in ``round_index`` (crash-stop)."""
        return True

    def node_crashed(self, round_index: int, node: int) -> bool:
        """Whether ``node`` is *permanently* gone as of ``round_index``.

        Distinct from :meth:`node_active`: a node may be temporarily
        inactive (frozen) yet come back, in which case this must stay
        ``False``.  The simulator uses this hook to terminate a run early
        once every node has either halted or crashed for good and no
        delayed message is still in flight — without it, crash-stop runs
        spin empty rounds to ``max_rounds``.
        """
        return False

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: "Message",
    ) -> int:
        """Rule on one delivery attempt: :data:`DELIVER`, :data:`DROP`, or a delay."""
        return DELIVER

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        """Model name + parameters, for run records and reports."""
        return {"name": self.name}


#: Zero-arg factories producing a fresh adversary per simulator; a stack so
#: scopes nest (the innermost wins).
_AMBIENT_FACTORIES: List[Callable[[], FaultAdversary]] = []


def active_fault_factory() -> Optional[Callable[[], FaultAdversary]]:
    """The innermost ambient adversary factory, or ``None``."""
    return _AMBIENT_FACTORIES[-1] if _AMBIENT_FACTORIES else None


@contextmanager
def fault_scope(factory: Callable[[], FaultAdversary]) -> Iterator[None]:
    """Attach ``factory`` to every simulator constructed inside the scope.

    Each simulator calls ``factory()`` once, so phase-structured protocols
    that build several simulators per run get a fresh adversary instance
    (with the same seed-derived schedule) per phase.
    """
    _AMBIENT_FACTORIES.append(factory)
    try:
        yield
    finally:
        _AMBIENT_FACTORIES.pop()
