"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by the library with a single ``except`` clause
while still being able to distinguish configuration problems from protocol
bugs or model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a protocol or simulator is configured inconsistently.

    Examples: a negative number of nodes, a mixing-time estimate of zero,
    or a parameter schedule whose functions return non-positive values.
    """


class TopologyError(ReproError):
    """Raised when a graph/topology is malformed for the requested use.

    Examples: building a port-numbered topology from a disconnected edge
    list, asking for a neighbour through a port that does not exist, or
    requesting a generator with incompatible parameters (e.g. a random
    regular graph with ``n * d`` odd).
    """


class ProtocolError(ReproError):
    """Raised when a protocol node observes an impossible local state.

    Protocol implementations raise this instead of silently continuing when
    an invariant that the paper's pseudocode relies on is violated (for
    instance, receiving a parent confirmation from a port that was never
    offered the source ID).  Surfacing these early makes simulation bugs
    visible instead of corrupting measured complexities.
    """


class CongestViolationError(ReproError):
    """Raised when a node attempts to violate the CONGEST model.

    The synchronous simulator enforces one message per port per round and,
    optionally, a per-message bit budget of ``O(log n)``.  Protocols that
    need to ship larger payloads must split them across rounds (as the
    paper does for diffusion potentials, transmitted bit by bit).
    """


class SimulationError(ReproError):
    """Raised when a simulation cannot make progress.

    Example: the round limit is reached while ``require_halt=True``.
    """
