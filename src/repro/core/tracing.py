"""Lightweight execution tracing.

Protocol debugging in a synchronous message-passing simulation benefits
from a structured trace of what happened in each round: which node sent
what through which port, when nodes changed protocol phase, when a node
halted.  The :class:`TraceRecorder` collects such events cheaply (it is a
no-op unless enabled) and the tests and examples use it to assert on and to
display protocol behaviour.

Traces stop at the process boundary by design (events reference live
protocol state), but they no longer stop at the Python boundary:
:meth:`TraceRecorder.to_jsonl` exports a structured JSONL file — a
header line with the event/drop counts, then one JSON line per event —
and :meth:`TraceRecorder.summary` reports what was kept vs dropped, so
run output can always say whether a bounded trace is complete.

:func:`trace_scope` is the ambient route into the simulator, mirroring
:func:`repro.core.simulator.backend_scope`: protocol entry points build
their own simulators internally, so attaching a recorder to a run driven
through the protocol registry (``repro-le elect --trace``) has to happen
ambiently rather than through every protocol signature.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "NullTraceRecorder",
    "active_trace",
    "trace_scope",
]


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record."""

    round_index: int
    kind: str
    node: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"node {self.node}" if self.node is not None else "network"
        extras = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[r{self.round_index:>5}] {where}: {self.kind}" + (
            f" ({extras})" if extras else ""
        )


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a simulation."""

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def record(
        self,
        round_index: int,
        kind: str,
        node: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Record one event (silently dropped when disabled or full)."""
        if not self.enabled:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            self._dropped += 1
            return
        self._events.append(TraceEvent(round_index, kind, node, dict(detail)))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Number of events dropped because ``max_events`` was reached."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of the given kind."""
        return [event for event in self._events if event.kind == kind]

    def for_node(self, node: int) -> List[TraceEvent]:
        """All recorded events attributed to ``node``."""
        return [event for event in self._events if event.node == node]

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0

    def summary(self) -> Dict[str, int]:
        """Kept/dropped counts for run output.

        ``dropped`` being nonzero is the signal that a ``max_events``
        bound truncated the trace — surfacing it is the difference
        between "the protocol did this" and "the recorder kept this".
        """
        return {"events": len(self._events), "dropped": self._dropped}

    def to_jsonl(self, path: Union[str, Path]) -> Path:
        """Export the trace as JSONL: a header line, then one event per line.

        The header carries :meth:`summary`, so a consumer of the file can
        tell a complete trace from a truncated one without re-running.
        Event details hold arbitrary protocol state; values that are not
        JSON-encodable are exported as their ``repr`` rather than
        aborting the export (a trace dump is a debugging artifact, and a
        lossy field beats no file).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"kind": "trace", **self.summary()}, sort_keys=True)
                + "\n"
            )
            for event in self._events:
                record = {
                    "round": event.round_index,
                    "event": event.kind,
                    "node": event.node,
                    "detail": event.detail,
                }
                try:
                    line = json.dumps(record, sort_keys=True)
                except (TypeError, ValueError):
                    record["detail"] = {
                        key: repr(value) for key, value in event.detail.items()
                    }
                    line = json.dumps(record, sort_keys=True)
                handle.write(line + "\n")
        return path


class NullTraceRecorder(TraceRecorder):
    """A recorder that never stores anything (default for benchmarks)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, round_index: int, kind: str, node: Optional[int] = None, **detail: Any) -> None:
        return


#: Innermost-wins stack of ambient trace recorders (the backend/fault
#: scope idiom of this package).
_TRACE_SCOPES: List[TraceRecorder] = []


def active_trace() -> Optional[TraceRecorder]:
    """The recorder simulators should default to in this scope, if any."""
    return _TRACE_SCOPES[-1] if _TRACE_SCOPES else None


@contextmanager
def trace_scope(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Route every simulator built in the scope to ``recorder``.

    Mirrors :func:`repro.core.simulator.backend_scope`: protocol entry
    points construct their own simulators internally, so a caller that
    wants a trace of a registry-driven run (``repro-le elect --trace``)
    attaches the recorder ambiently.  An explicit ``trace=`` argument to
    a simulator still wins over the ambient scope; scopes nest and the
    innermost wins.
    """
    _TRACE_SCOPES.append(recorder)
    try:
        yield recorder
    finally:
        _TRACE_SCOPES.pop()
