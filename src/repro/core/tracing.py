"""Lightweight execution tracing.

Protocol debugging in a synchronous message-passing simulation benefits
from a structured trace of what happened in each round: which node sent
what through which port, when nodes changed protocol phase, when a node
halted.  The :class:`TraceRecorder` collects such events cheaply (it is a
no-op unless enabled) and the tests and examples use it to assert on and to
display protocol behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceRecorder", "NullTraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record."""

    round_index: int
    kind: str
    node: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"node {self.node}" if self.node is not None else "network"
        extras = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[r{self.round_index:>5}] {where}: {self.kind}" + (
            f" ({extras})" if extras else ""
        )


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a simulation."""

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def record(
        self,
        round_index: int,
        kind: str,
        node: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Record one event (silently dropped when disabled or full)."""
        if not self.enabled:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            self._dropped += 1
            return
        self._events.append(TraceEvent(round_index, kind, node, dict(detail)))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Number of events dropped because ``max_events`` was reached."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of the given kind."""
        return [event for event in self._events if event.kind == kind]

    def for_node(self, node: int) -> List[TraceEvent]:
        """All recorded events attributed to ``node``."""
        return [event for event in self._events if event.node == node]

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0


class NullTraceRecorder(TraceRecorder):
    """A recorder that never stores anything (default for benchmarks)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, round_index: int, kind: str, node: Optional[int] = None, **detail: Any) -> None:
        return
