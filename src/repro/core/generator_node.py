"""Generator-based protocol nodes.

Protocols with deeply nested control flow (the revocable election of
Section 5.2 iterates estimates, certification repetitions, diffusion rounds
and dissemination rounds) are awkward to express as an explicit
``step``-driven state machine.  :class:`GeneratorNode` lets such protocols
be written as a plain Python generator that *yields* the outbox for the
current round and receives, as the value of the ``yield`` expression, the
inbox of the next round:

.. code-block:: python

    class MyNode(GeneratorNode):
        def run(self):
            inbox = yield {}                 # round 0: send nothing
            for _ in range(10):
                inbox = yield {1: Ping()}    # send Ping through port 1
            self.done = True                 # returning halts the node

The adapter takes care of matching the simulator's ``step`` contract and of
halting the node when the generator returns.
"""

from __future__ import annotations

import random
from abc import abstractmethod
from typing import Dict, Generator, Optional

from .errors import ProtocolError
from .messages import Message
from .node import Inbox, Outbox, ProtocolNode

__all__ = ["GeneratorNode"]

#: The generator protocol: yields outboxes, receives inboxes.
ProtocolGenerator = Generator[Dict[int, Message], Inbox, None]


class GeneratorNode(ProtocolNode):
    """A :class:`ProtocolNode` whose behaviour is written as a generator."""

    def __init__(self, num_ports: int, rng: random.Random) -> None:
        super().__init__(num_ports, rng)
        self._generator: Optional[ProtocolGenerator] = None
        self._halted = False
        self._expected_round = 0

    @abstractmethod
    def run(self) -> ProtocolGenerator:
        """The protocol body.  Must ``yield`` exactly once per round."""

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        if self._halted:
            return {}
        if round_index != self._expected_round:
            raise ProtocolError(
                f"generator node expected round {self._expected_round}, "
                f"got {round_index} (was a round skipped?)"
            )
        self._expected_round += 1
        try:
            if self._generator is None:
                self._generator = self.run()
                outbox = next(self._generator)
            else:
                outbox = self._generator.send(dict(inbox))
        except StopIteration:
            self._halted = True
            return {}
        return outbox or {}
