"""Core substrate: synchronous CONGEST simulation, messages, metrics, RNG."""

from .errors import (
    ConfigurationError,
    CongestViolationError,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
)
from .faults import DELIVER, DROP, FaultAdversary, active_fault_factory, fault_scope
from .generator_node import GeneratorNode
from .messages import Message, bits_for_int, bits_for_value, congest_budget_bits, id_space_bits
from .metrics import Metrics, MetricsCollector, PhaseMetrics
from .node import Inbox, Outbox, PassiveNode, ProtocolNode
from .rng import DEFAULT_SEED, RngStream, derive_seed, make_rng, spawn_child_rngs
from .simulator import (
    BACKENDS,
    SimulationResult,
    SynchronousSimulator,
    backend_scope,
    build_nodes,
    default_backend,
    run_protocol,
    set_default_backend,
)
from .tracing import (
    NullTraceRecorder,
    TraceEvent,
    TraceRecorder,
    active_trace,
    trace_scope,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "ProtocolError",
    "CongestViolationError",
    "SimulationError",
    "Message",
    "bits_for_int",
    "bits_for_value",
    "id_space_bits",
    "congest_budget_bits",
    "Metrics",
    "MetricsCollector",
    "PhaseMetrics",
    "DELIVER",
    "DROP",
    "FaultAdversary",
    "active_fault_factory",
    "fault_scope",
    "ProtocolNode",
    "PassiveNode",
    "GeneratorNode",
    "Inbox",
    "Outbox",
    "DEFAULT_SEED",
    "make_rng",
    "derive_seed",
    "spawn_child_rngs",
    "RngStream",
    "SynchronousSimulator",
    "SimulationResult",
    "BACKENDS",
    "backend_scope",
    "default_backend",
    "set_default_backend",
    "build_nodes",
    "run_protocol",
    "TraceRecorder",
    "TraceEvent",
    "NullTraceRecorder",
    "active_trace",
    "trace_scope",
]
