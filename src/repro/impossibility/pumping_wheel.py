"""The pumping-wheel construction of Theorem 2 (Section 5.1, Figures 1–2).

Theorem 2 states that without knowledge of the network size no algorithm
can solve *Irrevocable* Leader Election within any time bound ``T(n)`` with
constant probability.  The proof builds a large cycle ``C_N`` out of many
disjoint *witnesses* — paths of length ``2T(n) + 2n`` whose middle ``2n``
nodes form a *core* of two ``n``-node *segments* (Figure 1) — separated by
``2T(n)`` buffer nodes so their executions are independent for the first
``T(n)`` rounds.  Any execution that succeeds on ``C_n`` has a winning
configuration that, with enough witnesses, reappears in both segments of
some witness, so the nodes there stop with **two** leaders (Figure 2).

This module provides the construction and an empirical driver:

* :class:`WitnessLayout` — the geometry of a witness for given ``n, T``;
* :func:`build_pumping_wheel` — the cycle ``C_N`` holding a requested
  number of 2T-separated witnesses, plus the paper's (astronomically
  large) witness count needed for the union bound;
* :class:`BoundedUnknownSizeElectionNode` — a natural bounded-time election
  protocol for unknown-size networks: it assumes a size bound, floods the
  maximum random ID for ``T = 2·assumed_size`` rounds and stops.  On
  ``C_n`` with a correct assumption it elects exactly one leader w.h.p.;
* :func:`demonstrate_impossibility` — runs that protocol on ``C_n`` and on
  pumping wheels of growing witness count and reports how often the wheel
  ends with two or more raised flags, reproducing the phenomenon behind
  Theorem 2 (no specific algorithm can escape it; this driver accepts any
  bounded-time node factory).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.messages import Message
from ..core.metrics import MetricsCollector
from ..core.node import Inbox, Outbox, ProtocolNode
from ..core.simulator import SynchronousSimulator, build_nodes
from ..election.base import outcome_from_results
from ..election.ids import id_space_size
from ..graphs.generators import cycle
from ..graphs.topology import Topology

__all__ = [
    "WitnessLayout",
    "build_pumping_wheel",
    "paper_witness_count",
    "BoundedUnknownSizeElectionNode",
    "ImpossibilityTrial",
    "ImpossibilityReport",
    "demonstrate_impossibility",
]


# --------------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WitnessLayout:
    """Geometry of a single witness (Figure 1).

    A witness is a path of ``2·T + 2·n`` nodes: ``T`` buffer nodes, a core
    of two ``n``-node segments, and ``T`` more buffer nodes.
    """

    n: int
    horizon: int  # T(n)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.horizon < 1:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon}")

    @property
    def core_length(self) -> int:
        return 2 * self.n

    @property
    def witness_length(self) -> int:
        return 2 * self.horizon + self.core_length

    @property
    def separation(self) -> int:
        """Buffer between consecutive witnesses so executions are independent."""
        return 2 * self.horizon

    @property
    def period(self) -> int:
        """Nodes consumed per witness on the wheel: witness + separation."""
        return self.witness_length + self.separation

    def core_slice(self, witness_index: int) -> range:
        """Indices of the core nodes of the ``witness_index``-th witness."""
        start = witness_index * self.period + self.horizon
        return range(start, start + self.core_length)

    def segment_slices(self, witness_index: int) -> Sequence[range]:
        """The two ``n``-node segments of the witness's core."""
        core = self.core_slice(witness_index)
        return (
            range(core.start, core.start + self.n),
            range(core.start + self.n, core.stop),
        )


def paper_witness_count(n: int, horizon: int, success_probability: float) -> float:
    """The witness count used in the paper's union bound.

    Theorem 2 takes ``x > ln(1/c)/c² · 2^{2nT(n)}`` witnesses so that some
    witness reproduces the winning configuration with probability ``> 1-c``.
    The value is astronomically large for any non-trivial ``n`` — that is
    the point of reporting it — while the *empirical* demonstration below
    needs only a handful of witnesses because real protocols are far more
    repetitive than the worst case the union bound allows for.
    """
    if not (0.0 < success_probability < 1.0):
        raise ConfigurationError(
            f"success_probability must be in (0, 1), got {success_probability}"
        )
    c = success_probability
    return math.log(1.0 / c) / (c * c) * 2.0 ** (2 * n * horizon)


def build_pumping_wheel(
    layout: WitnessLayout,
    num_witnesses: int,
    *,
    port_seed: Optional[int] = None,
) -> Topology:
    """The cycle ``C_N`` containing ``num_witnesses`` 2T-separated witnesses."""
    if num_witnesses < 1:
        raise ConfigurationError(
            f"num_witnesses must be positive, got {num_witnesses}"
        )
    total = layout.period * num_witnesses
    wheel = cycle(total, port_seed=port_seed)
    return Topology(
        wheel.num_nodes,
        list(wheel.edges()),
        name=f"pumping_wheel(n={layout.n},T={layout.horizon},witnesses={num_witnesses})",
        port_seed=port_seed,
    )


# --------------------------------------------------------------------------- #
# a natural bounded-time protocol for unknown-size networks
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WheelAnnouncement(Message):
    """Flooded maximum ID used by the bounded-time election."""

    node_id: int


class BoundedUnknownSizeElectionNode(ProtocolNode):
    """A bounded-time election protocol that does not know the true size.

    The node assumes the network has at most ``assumed_size`` nodes, draws
    an ID from ``{1..assumed_size^4}``, floods the maximum for
    ``T = 2·assumed_size`` rounds (twice the diameter of the cycle it was
    designed for) and then *stops*, raising the flag iff it never heard a
    larger ID.  On ``C_n`` with ``assumed_size >= n`` this is a perfectly
    sensible Irrevocable Leader Election algorithm; Theorem 2 says every
    such bounded-time protocol must fail on some larger network, and the
    pumping wheel makes it fail visibly.
    """

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        assumed_size: int,
        horizon: Optional[int] = None,
    ) -> None:
        super().__init__(num_ports, rng)
        if assumed_size < 1:
            raise ConfigurationError(
                f"assumed_size must be positive, got {assumed_size}"
            )
        self.assumed_size = assumed_size
        self.horizon = horizon if horizon is not None else 2 * assumed_size
        self.node_id = rng.randint(1, id_space_size(assumed_size))
        self.max_seen = self.node_id
        self.leader = False
        self._announced: Optional[int] = None
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        for message in inbox.values():
            if isinstance(message, WheelAnnouncement):
                if message.node_id > self.max_seen:
                    self.max_seen = message.node_id
        if round_index >= self.horizon:
            self.leader = self.max_seen == self.node_id
            self._halted = True
            return {}
        if self._announced != self.max_seen:
            self._announced = self.max_seen
            return {
                port: WheelAnnouncement(node_id=self.max_seen) for port in self.ports()
            }
        return {}

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.leader,
            "candidate": True,
            "node_id": self.node_id,
            "max_seen": self.max_seen,
            "assumed_size": self.assumed_size,
            "horizon": self.horizon,
            "halted": self._halted,
        }


# --------------------------------------------------------------------------- #
# empirical demonstration
# --------------------------------------------------------------------------- #

#: Factory signature for the protocol under test.
BoundedProtocolFactory = Callable[[int, random.Random, int], ProtocolNode]


def _default_factory(num_ports: int, rng: random.Random, assumed_size: int) -> ProtocolNode:
    return BoundedUnknownSizeElectionNode(num_ports, rng, assumed_size=assumed_size)


@dataclass(frozen=True)
class ImpossibilityTrial:
    """One seed's outcome on the base cycle and on the pumping wheel."""

    seed: int
    base_leaders: int
    wheel_leaders: int

    @property
    def base_correct(self) -> bool:
        return self.base_leaders == 1

    @property
    def wheel_failed(self) -> bool:
        """The wheel execution violated uniqueness (zero or several flags)."""
        return self.wheel_leaders != 1


@dataclass
class ImpossibilityReport:
    """Aggregate of the impossibility demonstration."""

    n: int
    horizon: int
    num_witnesses: int
    wheel_size: int
    paper_witnesses: float
    trials: List[ImpossibilityTrial] = field(default_factory=list)

    @property
    def base_success_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.base_correct for t in self.trials) / len(self.trials)

    @property
    def wheel_failure_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.wheel_failed for t in self.trials) / len(self.trials)

    @property
    def mean_wheel_leaders(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.wheel_leaders for t in self.trials) / len(self.trials)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "horizon": self.horizon,
            "num_witnesses": self.num_witnesses,
            "wheel_size": self.wheel_size,
            "paper_witnesses": self.paper_witnesses,
            "trials": len(self.trials),
            "base_success_rate": self.base_success_rate,
            "wheel_failure_rate": self.wheel_failure_rate,
            "mean_wheel_leaders": self.mean_wheel_leaders,
        }


def _count_leaders(
    topology: Topology,
    factory: BoundedProtocolFactory,
    assumed_size: int,
    horizon: int,
    seed: int,
) -> int:
    def node_factory(index: int, num_ports: int, rng: random.Random) -> ProtocolNode:
        return factory(num_ports, rng, assumed_size)

    nodes = build_nodes(topology, node_factory, seed=seed)
    simulator = SynchronousSimulator(topology, nodes, metrics=MetricsCollector())
    simulation = simulator.run(horizon + 2, require_halt=False)
    outcome = outcome_from_results(simulation.results())
    return outcome.num_leaders


def demonstrate_impossibility(
    n: int,
    *,
    num_witnesses: int = 4,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    success_probability: float = 0.9,
    factory: BoundedProtocolFactory = _default_factory,
) -> ImpossibilityReport:
    """Run the bounded-time protocol on ``C_n`` and on the pumping wheel.

    Returns a report whose ``wheel_failure_rate`` shows how often the
    bounded-time protocol — correct on the cycle it was designed for —
    stops with several leaders on the larger wheel, the failure mode
    Theorem 2 proves is unavoidable.
    """
    if n < 3:
        raise ConfigurationError(f"n must be at least 3 for a cycle, got {n}")
    horizon = 2 * n
    layout = WitnessLayout(n=n, horizon=horizon)
    wheel = build_pumping_wheel(layout, num_witnesses)
    base = cycle(n)
    report = ImpossibilityReport(
        n=n,
        horizon=horizon,
        num_witnesses=num_witnesses,
        wheel_size=wheel.num_nodes,
        paper_witnesses=paper_witness_count(n, horizon, success_probability),
    )
    for seed in seeds:
        base_leaders = _count_leaders(base, factory, n, horizon, seed)
        wheel_leaders = _count_leaders(wheel, factory, n, horizon, seed)
        report.trials.append(
            ImpossibilityTrial(
                seed=seed,
                base_leaders=base_leaders,
                wheel_leaders=wheel_leaders,
            )
        )
    return report
