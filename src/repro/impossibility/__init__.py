"""The pumping-wheel impossibility construction (Section 5.1, Theorem 2)."""

from .pumping_wheel import (
    BoundedUnknownSizeElectionNode,
    ImpossibilityReport,
    ImpossibilityTrial,
    WitnessLayout,
    build_pumping_wheel,
    demonstrate_impossibility,
    paper_witness_count,
)

__all__ = [
    "WitnessLayout",
    "build_pumping_wheel",
    "paper_witness_count",
    "BoundedUnknownSizeElectionNode",
    "ImpossibilityTrial",
    "ImpossibilityReport",
    "demonstrate_impossibility",
]
