"""repro — reproduction of Kowalski & Mosteiro, "Time and Communication
Complexity of Leader Election in Anonymous Networks" (ICDCS 2021).

The package is organised as:

* :mod:`repro.core` — synchronous CONGEST simulation substrate;
* :mod:`repro.graphs` — anonymous port-numbered topologies and expansion
  analysis (conductance, isoperimetric number, mixing time);
* :mod:`repro.election` — the paper's protocols: irrevocable leader
  election for known ``n`` (Section 4) and the blind revocable election
  (Section 5.2);
* :mod:`repro.baselines` — prior-work comparators from Table 1;
* :mod:`repro.impossibility` — the pumping-wheel construction of Theorem 2;
* :mod:`repro.analysis` — experiment runner, complexity fitting, reports;
* :mod:`repro.api` — the supported library facade: ``run``, ``sweep``,
  ``query``, ``serve`` behind one :class:`~repro.api.SweepConfig`;
* :mod:`repro.archive` — persistent content-addressed result archive
  and the memoized query layer over it;
* :mod:`repro.dynamics` — adversarial network dynamics: fault injection,
  link churn, and robustness sweeps over the execution model;
* :mod:`repro.obs` — observability of the sweep machinery itself: span
  timers, per-task telemetry/JSONL export, in-worker profiling;
* :mod:`repro.parallel` — multiprocessing sweep engine with checkpoints;
* :mod:`repro.protocols` — first-class protocol configuration: the
  registry of protocol names, parameter schemas and sweepable
  :class:`~repro.protocols.spec.ProtocolSpec` values;
* :mod:`repro.workloads` — named topology suites used by the benchmarks.

Quickstart::

    from repro.graphs import random_regular
    from repro.election import run_irrevocable_election

    topology = random_regular(64, 4, seed=7)
    result = run_irrevocable_election(topology, seed=42)
    assert result.success
    print(result.messages, result.rounds_executed)
"""

from . import (
    analysis,
    api,
    archive,
    baselines,
    core,
    dynamics,
    election,
    graphs,
    impossibility,
    obs,
    protocols,
    workloads,
)

__version__ = "1.3.0"

__all__ = [
    "core",
    "graphs",
    "election",
    "baselines",
    "impossibility",
    "analysis",
    "api",
    "archive",
    "dynamics",
    "obs",
    "protocols",
    "workloads",
    "__version__",
]
