"""Prior-work baselines used in the Table 1 comparison."""

from .flooding import (
    FloodAnnouncement,
    FloodingConfig,
    FloodingMaxIdNode,
    run_flooding_election,
)
from .gilbert import (
    GilbertConfig,
    GilbertStyleNode,
    TokenBundle,
    WalkToken,
    run_gilbert_election,
)
from .uniform_id import run_uniform_id_election

__all__ = [
    "FloodingConfig",
    "FloodingMaxIdNode",
    "FloodAnnouncement",
    "run_flooding_election",
    "GilbertConfig",
    "GilbertStyleNode",
    "WalkToken",
    "TokenBundle",
    "run_gilbert_election",
    "run_uniform_id_election",
]
