"""Flooding max-ID election (the Kutten et al. [16] style baseline).

The classic ``O(m)``-messages / ``O(D)``-time randomized election for known
``n`` and ``D``: a few candidates (sampled with probability ``c·log n / n``)
draw random IDs and flood them; every node forwards the largest ID it has
seen, but only when that value changes, so each link carries ``O(log n)``
announcements overall.  After ``D + O(1)`` rounds the candidate holding the
globally largest ID is the unique node that never heard a larger one.

This is the "known ``n, D``" row of Table 1 that the paper's Theorem 1
undercuts on message complexity for well-connected graphs (where
``√(n·t_mix)/Φ ≪ m``) while losing on time for small-diameter graphs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import ConfigurationError
from ..core.messages import Message
from ..core.metrics import MetricsCollector
from ..core.node import Inbox, Outbox, ProtocolNode
from ..core.simulator import SynchronousSimulator, build_nodes
from ..graphs.topology import Topology
from ..election.base import LeaderElectionResult, election_result_from_simulation
from ..election.ids import draw_identity

__all__ = [
    "FloodAnnouncement",
    "FloodingConfig",
    "FloodingMaxIdNode",
    "run_flooding_election",
    "ALGORITHM_NAME",
]

ALGORITHM_NAME = "flooding-max-id"


@dataclass(frozen=True)
class FloodAnnouncement(Message):
    """The largest candidate ID known to the sender."""

    candidate_id: int


@dataclass(frozen=True)
class FloodingConfig:
    """Parameters of the flooding election."""

    n: int
    diameter: int
    c: float = 2.0
    #: every node (not only sampled candidates) competes when True — used by
    #: the ``uniform-id`` baseline variant.
    all_nodes_compete: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.diameter < 0:
            raise ConfigurationError(
                f"diameter must be non-negative, got {self.diameter}"
            )
        if self.c <= 0:
            raise ConfigurationError(f"c must be positive, got {self.c}")

    def total_rounds(self) -> int:
        """Flood for ``D + 1`` rounds, plus one round to settle the flags."""
        return self.diameter + 2

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        *,
        c: float = 2.0,
        all_nodes_compete: bool = False,
    ) -> "FloodingConfig":
        return cls(
            n=topology.num_nodes,
            diameter=topology.diameter(),
            c=c,
            all_nodes_compete=all_nodes_compete,
        )


class FloodingMaxIdNode(ProtocolNode):
    """One node of the flooding max-ID election."""

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        config: FloodingConfig,
    ) -> None:
        super().__init__(num_ports, rng)
        self.config = config
        identity = draw_identity(rng, config.n, config.c)
        self.node_id = identity.node_id
        self.candidate = True if config.all_nodes_compete else identity.candidate
        self.max_seen = self.node_id if self.candidate else 0
        self.leader = False
        self._announced: Optional[int] = None
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        for message in inbox.values():
            if isinstance(message, FloodAnnouncement):
                if message.candidate_id > self.max_seen:
                    self.max_seen = message.candidate_id

        if round_index >= self.config.total_rounds() - 1:
            self.leader = self.candidate and self.max_seen == self.node_id
            self._halted = True
            return {}

        if self.max_seen > 0 and self._announced != self.max_seen:
            # Forward the new maximum exactly once per improvement.
            self._announced = self.max_seen
            return {
                port: FloodAnnouncement(candidate_id=self.max_seen)
                for port in self.ports()
            }
        return {}

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.leader,
            "candidate": self.candidate,
            "node_id": self.node_id,
            "max_seen": self.max_seen,
            "halted": self._halted,
        }


def run_flooding_election(
    topology: Topology,
    *,
    seed: Optional[int] = None,
    config: Optional[FloodingConfig] = None,
    c: float = 2.0,
    all_nodes_compete: bool = False,
    metrics: Optional[MetricsCollector] = None,
) -> LeaderElectionResult:
    """Run the flooding baseline once and return outcome + cost.

    Registered in the protocol registry as ``flooding`` with
    ``c``/``all_nodes_compete`` as its schema (see :mod:`repro.protocols`).
    """
    if config is None:
        config = FloodingConfig.from_topology(
            topology, c=c, all_nodes_compete=all_nodes_compete
        )
    collector = metrics if metrics is not None else MetricsCollector()

    def factory(index: int, num_ports: int, rng: random.Random) -> ProtocolNode:
        return FloodingMaxIdNode(num_ports, rng, config=config)

    nodes = build_nodes(topology, factory, seed=seed)
    simulator = SynchronousSimulator(topology, nodes, metrics=collector)
    with collector.phase("flooding"):
        simulation = simulator.run(config.total_rounds())
    algorithm = "uniform-id-flooding" if config.all_nodes_compete else ALGORITHM_NAME
    return election_result_from_simulation(
        algorithm,
        simulation,
        seed=seed,
        parameters={
            "n": config.n,
            "diameter": config.diameter,
            "c": config.c,
            "all_nodes_compete": config.all_nodes_compete,
            "total_rounds": config.total_rounds(),
        },
    )
