"""Naive uniform-ID flooding election (strawman baseline).

Every node — not just a logarithmic sample of candidates — draws a random
ID from ``{1..n^4}`` and competes; the maximum is flooded for ``D`` rounds.
This always elects exactly one leader (barring the ``n^{-2}``-probability
ID collision) but pays for it: every node announces at least once, and a
node re-announces every time the running maximum improves, so the message
complexity grows like ``Θ(m)`` with a topology-dependent log-ish factor,
against which both the paper's Theorem 1 protocol and the candidate-sampled
flooding baseline compare favourably on sparse well-connected graphs.

Implementation-wise this is the ``all_nodes_compete`` variant of
:mod:`repro.baselines.flooding`; the thin wrapper exists so experiments can
refer to the two baselines by distinct names.
"""

from __future__ import annotations

from typing import Optional

from ..core.metrics import MetricsCollector
from ..election.base import LeaderElectionResult
from ..graphs.topology import Topology
from .flooding import FloodingConfig, run_flooding_election

__all__ = ["run_uniform_id_election", "ALGORITHM_NAME"]

ALGORITHM_NAME = "uniform-id-flooding"


def run_uniform_id_election(
    topology: Topology,
    *,
    seed: Optional[int] = None,
    metrics: Optional[MetricsCollector] = None,
) -> LeaderElectionResult:
    """Run the every-node-competes flooding election once.

    Registered in the protocol registry as ``uniform`` (no parameters;
    see :mod:`repro.protocols`).
    """
    config = FloodingConfig.from_topology(topology, all_nodes_compete=True)
    return run_flooding_election(
        topology,
        seed=seed,
        config=config,
        metrics=metrics,
    )
