"""Gilbert et al. (PODC 2018) style random-walk election baseline.

The "Leader election in well-connected graphs" algorithm [10] is the prior
work the paper's Theorem 1 improves on: for known ``n`` it elects a leader
with ``Õ(t_mix·√n)`` messages by having the ``Θ(log n)`` sampled candidates
spray ``Θ̃(√n)`` random-walk tokens; token sets of different candidates
intersect w.h.p. (birthday paradox), letting smaller candidates learn about
larger ones.

Our re-implementation keeps that structure and cost shape:

* **marking phase** — each candidate releases ``K = Θ(√n·log n)`` lazy
  random-walk tokens for ``L = Θ(t_mix·log n)`` steps; every visited node
  remembers the largest candidate ID that marked it;
* **probing phase** — each candidate releases another ``K`` tokens that
  record the largest mark seen along their path;
* **return phase** — probe tokens retrace their recorded path back to the
  candidate, delivering the largest mark they collected.

A candidate that hears no ID larger than its own raises the flag.  Each
token hop is one CONGEST message of ``O(log n)`` bits (tokens sharing a
link in a round are bundled but accounted per token); the reverse path kept
inside probe tokens models the source routing that [10] engineer around and
is excluded from bit accounting (see DESIGN.md §3.5).  Knowledge of
``t_mix`` is granted to the baseline (the original pays extra *time*, not
messages, to avoid it), so its message complexity — the quantity Table 1
compares — is represented faithfully.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.messages import Message, bits_for_int
from ..core.metrics import MetricsCollector
from ..core.node import Inbox, Outbox, ProtocolNode
from ..core.simulator import SynchronousSimulator, build_nodes
from ..graphs.spectral import mixing_time as measure_mixing_time
from ..graphs.topology import Topology
from ..election.base import LeaderElectionResult, election_result_from_simulation
from ..election.ids import draw_identity

__all__ = [
    "WalkToken",
    "TokenBundle",
    "GilbertConfig",
    "GilbertStyleNode",
    "run_gilbert_election",
    "ALGORITHM_NAME",
]

ALGORITHM_NAME = "gilbert-random-walk"

MODE_MARK = "mark"
MODE_PROBE = "probe"
MODE_RETURN = "return"


@dataclass(frozen=True)
class WalkToken:
    """One random-walk token.

    ``path`` holds the arrival ports needed to retrace the walk (newest
    last); it models source routing and is excluded from the CONGEST bit
    accounting.
    """

    candidate_id: int
    mode: str
    steps_remaining: int
    collected_max: int
    path: Tuple[int, ...] = ()


@dataclass(frozen=True)
class TokenBundle(Message):
    """All tokens forwarded over one link in one round."""

    tokens: Tuple[WalkToken, ...]

    def size_bits(self, network_size: Optional[int] = None) -> int:
        total = self.TYPE_TAG_BITS
        for token in self.tokens:
            total += (
                bits_for_int(token.candidate_id)
                + 2  # mode tag
                + bits_for_int(token.steps_remaining)
                + bits_for_int(token.collected_max)
            )
        return total

    def congest_units(self) -> int:
        """Each token is its own ``O(log n)``-bit CONGEST message."""
        return max(1, len(self.tokens))


@dataclass(frozen=True)
class GilbertConfig:
    """Parameters of the Gilbert-style baseline."""

    n: int
    t_mix: int
    c: float = 2.0
    token_multiplier: float = 1.0
    walk_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.t_mix < 1:
            raise ConfigurationError(f"t_mix must be positive, got {self.t_mix}")
        if self.c <= 0 or self.token_multiplier <= 0 or self.walk_multiplier <= 0:
            raise ConfigurationError("constants must be positive")

    @property
    def log_n(self) -> float:
        return max(1.0, math.log(self.n))

    @property
    def tokens_per_candidate(self) -> int:
        """``K = Θ(√n · log n)`` tokens per candidate."""
        return max(1, math.ceil(self.token_multiplier * math.sqrt(self.n) * self.log_n))

    @property
    def walk_length(self) -> int:
        """``L = Θ(t_mix · log n)`` steps per token."""
        return max(1, math.ceil(self.walk_multiplier * self.t_mix * self.log_n))

    @property
    def mark_phase_end(self) -> int:
        return self.walk_length + 1

    @property
    def probe_phase_end(self) -> int:
        return self.mark_phase_end + self.walk_length + 1

    def total_rounds(self) -> int:
        """Marking + probing + return + settling."""
        return self.probe_phase_end + self.walk_length + 2

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "t_mix": self.t_mix,
            "c": self.c,
            "tokens_per_candidate": self.tokens_per_candidate,
            "walk_length": self.walk_length,
            "total_rounds": self.total_rounds(),
        }

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        *,
        c: float = 2.0,
        t_mix: Optional[int] = None,
        token_multiplier: float = 1.0,
        walk_multiplier: float = 2.0,
    ) -> "GilbertConfig":
        measured = t_mix if t_mix is not None else measure_mixing_time(topology)
        return cls(
            n=topology.num_nodes,
            t_mix=max(1, int(measured)),
            c=c,
            token_multiplier=token_multiplier,
            walk_multiplier=walk_multiplier,
        )


class GilbertStyleNode(ProtocolNode):
    """One node of the Gilbert-style random-walk election."""

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        config: GilbertConfig,
    ) -> None:
        super().__init__(num_ports, rng)
        self.config = config
        identity = draw_identity(rng, config.n, config.c)
        self.node_id = identity.node_id
        self.candidate = identity.candidate
        self.mark = self.node_id if self.candidate else 0
        self.heard_max = self.node_id if self.candidate else 0
        self.leader = False
        self._held: List[WalkToken] = []
        self._halted = False
        if self.candidate:
            self._held.extend(
                WalkToken(
                    candidate_id=self.node_id,
                    mode=MODE_MARK,
                    steps_remaining=config.walk_length,
                    collected_max=self.node_id,
                )
                for _ in range(config.tokens_per_candidate)
            )

    # ------------------------------------------------------------------ #
    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        self._absorb(inbox)

        if round_index == self.config.mark_phase_end and self.candidate:
            # Release the probing wave.
            self._held.extend(
                WalkToken(
                    candidate_id=self.node_id,
                    mode=MODE_PROBE,
                    steps_remaining=self.config.walk_length,
                    collected_max=self.mark,
                )
                for _ in range(self.config.tokens_per_candidate)
            )

        if round_index >= self.config.total_rounds() - 1:
            self.leader = (
                self.candidate and max(self.heard_max, self.mark) <= self.node_id
            )
            self._halted = True
            return {}

        return self._move_tokens()

    # ------------------------------------------------------------------ #
    def _absorb(self, inbox: Inbox) -> None:
        for port, message in inbox.items():
            if not isinstance(message, TokenBundle):
                continue
            for token in message.tokens:
                if token.mode == MODE_MARK:
                    if token.candidate_id > self.mark:
                        self.mark = token.candidate_id
                    self._held.append(token)
                elif token.mode == MODE_PROBE:
                    collected = max(token.collected_max, self.mark)
                    self._held.append(
                        replace(
                            token,
                            collected_max=collected,
                            path=token.path + (port,),
                        )
                    )
                elif token.mode == MODE_RETURN:
                    if token.path:
                        self._held.append(token)
                    else:
                        self._deliver(token)

    def _deliver(self, token: WalkToken) -> None:
        """A probe token returned to its origin: record what it collected."""
        if token.collected_max > self.heard_max:
            self.heard_max = token.collected_max

    def _move_tokens(self) -> Outbox:
        per_port: Dict[int, List[WalkToken]] = {}
        still_held: List[WalkToken] = []
        for token in self._held:
            if token.mode == MODE_MARK:
                self._move_walk_token(token, per_port, still_held)
            elif token.mode == MODE_PROBE:
                if token.steps_remaining <= 0:
                    self._start_return(token, per_port, still_held)
                else:
                    self._move_walk_token(token, per_port, still_held)
            elif token.mode == MODE_RETURN:
                self._move_return_token(token, per_port)
        self._held = still_held
        return {
            port: TokenBundle(tokens=tuple(tokens))
            for port, tokens in per_port.items()
            if tokens
        }

    def _move_walk_token(
        self,
        token: WalkToken,
        per_port: Dict[int, List[WalkToken]],
        still_held: List[WalkToken],
    ) -> None:
        if token.steps_remaining <= 0:
            if token.mode == MODE_MARK:
                return  # exhausted mark tokens evaporate
            still_held.append(token)
            return
        if self.num_ports == 0 or self.rng.random() < 0.5:
            still_held.append(replace(token, steps_remaining=token.steps_remaining - 1))
            return
        port = self.rng.randint(1, self.num_ports)
        per_port.setdefault(port, []).append(
            replace(token, steps_remaining=token.steps_remaining - 1)
        )

    def _start_return(
        self,
        token: WalkToken,
        per_port: Dict[int, List[WalkToken]],
        still_held: List[WalkToken],
    ) -> None:
        collected = max(token.collected_max, self.mark)
        if not token.path:
            # The token never left its origin: deliver locally.
            self._deliver(replace(token, collected_max=collected))
            return
        returning = replace(token, mode=MODE_RETURN, collected_max=collected)
        self._forward_return(returning, per_port)

    def _move_return_token(
        self, token: WalkToken, per_port: Dict[int, List[WalkToken]]
    ) -> None:
        if not token.path:
            self._deliver(token)
            return
        self._forward_return(token, per_port)

    def _forward_return(
        self, token: WalkToken, per_port: Dict[int, List[WalkToken]]
    ) -> None:
        back_port = token.path[-1]
        per_port.setdefault(back_port, []).append(
            replace(token, path=token.path[:-1])
        )

    # ------------------------------------------------------------------ #
    def result(self) -> Dict[str, object]:
        return {
            "leader": self.leader,
            "candidate": self.candidate,
            "node_id": self.node_id,
            "mark": self.mark,
            "heard_max": self.heard_max,
            "halted": self._halted,
        }


def run_gilbert_election(
    topology: Topology,
    *,
    seed: Optional[int] = None,
    config: Optional[GilbertConfig] = None,
    c: float = 2.0,
    metrics: Optional[MetricsCollector] = None,
) -> LeaderElectionResult:
    """Run the Gilbert-style baseline once and return outcome + cost.

    Registered in the protocol registry as ``gilbert`` with ``c`` as its
    schema (see :mod:`repro.protocols`).
    """
    if config is None:
        config = GilbertConfig.from_topology(topology, c=c)
    collector = metrics if metrics is not None else MetricsCollector()

    def factory(index: int, num_ports: int, rng: random.Random) -> ProtocolNode:
        return GilbertStyleNode(num_ports, rng, config=config)

    nodes = build_nodes(topology, factory, seed=seed)
    simulator = SynchronousSimulator(topology, nodes, metrics=collector)
    with collector.phase("random-walk-tokens"):
        simulation = simulator.run(config.total_rounds())
    return election_result_from_simulation(
        ALGORITHM_NAME,
        simulation,
        seed=seed,
        parameters=config.as_dict(),
    )
