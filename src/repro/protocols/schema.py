"""Typed parameter schemas for protocol registrations.

Every protocol in the registry (:mod:`repro.protocols.registry`) declares
its tunable constants as a :class:`ProtocolSchema` — an ordered set of
:class:`ParamSpec` entries carrying the parameter's type, default and a
one-line description.  The schema is what turns a CLI string such as
``irrevocable:c=3,x_multiplier=1.5`` into validated keyword arguments, and
what makes configuration errors *explanatory*: an unknown parameter or a
bad value is reported together with everything the protocol does accept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..core.errors import ConfigurationError

__all__ = [
    "ParamSpec",
    "ProtocolSchema",
    "check_non_negative",
    "check_positive",
    "check_unit_open_closed",
    "check_unit_open_open",
]

#: Parameter types a schema may declare.  Values parsed from strings are
#: coerced to exactly one of these (``bool`` before ``int`` — a bool *is*
#: an int in Python, and "crashed=1" must not silently become the integer).
_SUPPORTED_TYPES = (float, int, bool)

_TRUE_WORDS = frozenset({"true", "yes", "on", "1"})
_FALSE_WORDS = frozenset({"false", "no", "off", "0"})


# Module-level range validators (picklable by reference — schemas travel
# to worker processes inside ProtocolRunner).  Each returns an error
# string, or None when the value is acceptable.


def check_positive(value) -> Optional[str]:
    return None if value > 0 else f"must be positive, got {value!r}"


def check_non_negative(value) -> Optional[str]:
    return None if value >= 0 else f"must be non-negative, got {value!r}"


def check_unit_open_closed(value) -> Optional[str]:
    return None if 0 < value <= 1 else f"must be in (0, 1], got {value!r}"


def check_unit_open_open(value) -> Optional[str]:
    return None if 0 < value < 1 else f"must be in (0, 1), got {value!r}"


@dataclass(frozen=True)
class ParamSpec:
    """One tunable protocol constant: name, type, default, description.

    ``check`` is an optional range validator (one of the module-level
    ``check_*`` functions, or any picklable callable returning an error
    string or ``None``): it runs at spec-construction time, so an
    out-of-range constant fails at grid construction — with the schema
    spelled out — rather than inside a worker process mid-sweep.
    """

    name: str
    type: type
    default: object
    doc: str = ""
    check: Optional[Callable[[object], Optional[str]]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("parameter name must be non-empty")
        for forbidden in ":|,=":
            if forbidden in self.name:
                # The same reserved set as protocol names: a ',' or '='
                # in a parameter name would break the spec string
                # round-trip, a '|' the checkpoint task-key segmentation.
                raise ConfigurationError(
                    f"parameter name {self.name!r} may not contain "
                    f"{forbidden!r} (reserved by spec strings and "
                    f"checkpoint task keys)"
                )
        if self.type not in _SUPPORTED_TYPES:
            raise ConfigurationError(
                f"parameter {self.name!r} declares unsupported type "
                f"{self.type!r}; supported: float, int, bool"
            )
        # Coerce the declared default to the declared type: a float param
        # declared with default 2 (int) would otherwise render "default 2"
        # in the schema and desynchronise canonical() dedup, whose filled
        # defaults must repr identically to coerced explicit values.
        try:
            object.__setattr__(self, "default", self.coerce(self.default))
        except ValueError as error:
            raise ConfigurationError(
                f"bad default for parameter {self.name!r}: {error}"
            ) from None
        if self.check is not None:
            complaint = self.check(self.default)
            if complaint is not None:
                raise ConfigurationError(
                    f"bad default for parameter {self.name!r}: {complaint}"
                )

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``"c (float, default 2.0)"``."""
        return f"{self.name} ({self.type.__name__}, default {self.default!r})"

    def coerce(self, value: object) -> object:
        """Coerce ``value`` (possibly a CLI string) to this parameter's type.

        Raises :class:`ValueError` on values that cannot represent the
        declared type; the schema wraps it into a
        :class:`~repro.core.errors.ConfigurationError` that names the
        protocol and its full schema.
        """
        if self.type is bool:
            return _coerce_bool(value)
        if self.type is int:
            return _coerce_int(value)
        return _coerce_float(value)


def _coerce_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        word = value.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
    raise ValueError(f"expected a boolean (true/false), got {value!r}")


def _coerce_int(value: object) -> int:
    if isinstance(value, bool):
        raise ValueError(f"expected an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise ValueError(f"expected an integer, got {value!r}")
    if isinstance(value, str):
        return int(value.strip())
    raise ValueError(f"expected an integer, got {value!r}")


def _coerce_float(value: object) -> float:
    if isinstance(value, bool):
        raise ValueError(f"expected a number, got {value!r}")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise ValueError(f"expected a number, got {value!r}")


@dataclass(frozen=True)
class ProtocolSchema:
    """The ordered parameter schema of one registered protocol."""

    params: Tuple[ParamSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [param.name for param in self.params]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate parameter names in schema: {names}")

    def describe(self) -> str:
        """The schema as one line: ``"c (float, default 2.0), ..."``."""
        if not self.params:
            return "(no parameters)"
        return ", ".join(param.describe() for param in self.params)

    def param(self, name: str) -> ParamSpec:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(name)

    def validate(
        self, protocol_name: str, params: Mapping[str, object]
    ) -> Dict[str, object]:
        """Coerce and validate a parameter mapping against this schema.

        Returns the coerced parameters (only those supplied — defaults are
        left to the protocol factory so the schema and the factory can
        never disagree on them).  Unknown names and uncoercible values
        raise :class:`~repro.core.errors.ConfigurationError` messages that
        spell out the full schema, so a typo on the command line teaches
        the caller the protocol's actual knobs.
        """
        known = {param.name: param for param in self.params}
        validated: Dict[str, object] = {}
        for name, value in params.items():
            param = known.get(name)
            if param is None:
                raise ConfigurationError(
                    f"{protocol_name} does not accept parameter {name!r}; "
                    f"{protocol_name} accepts: {self.describe()}"
                )
            try:
                coerced = param.coerce(value)
            except ValueError as error:
                raise ConfigurationError(
                    f"bad value for {protocol_name} parameter {name!r}: {error}; "
                    f"{protocol_name} accepts: {self.describe()}"
                ) from None
            if param.check is not None:
                complaint = param.check(coerced)
                if complaint is not None:
                    raise ConfigurationError(
                        f"bad value for {protocol_name} parameter {name!r}: "
                        f"{complaint}; {protocol_name} accepts: {self.describe()}"
                    )
            validated[name] = coerced
        return validated
