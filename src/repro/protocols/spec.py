"""Declarative, picklable protocol specifications.

A :class:`ProtocolSpec` is the protocol-side twin of
:class:`~repro.dynamics.spec.AdversarySpec`: a registered protocol name
plus a frozen, schema-validated parameter mapping.  It is hashable and
picklable (so the parallel engine ships it to workers inside an
:class:`~repro.analysis.experiments.ExperimentSpec`), renders a stable
:meth:`~ProtocolSpec.token` that becomes part of checkpoint task keys,
and round-trips through its string form::

    ProtocolSpec.parse("irrevocable:c=3,x_multiplier=1.5")
    str(spec) == "irrevocable:c=3.0,x_multiplier=1.5"
    ProtocolSpec.parse(str(spec)) == spec          # parse -> str -> parse

Values are coerced to the schema's declared types at construction time
(``c=3`` and ``c=3.0`` build the *same* spec), so equal configurations
hash equal and produce identical task keys no matter how they were
spelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..core.errors import ConfigurationError
from .registry import ProtocolDefinition, protocol_by_name

__all__ = ["ProtocolSpec", "parse_protocol_params"]


def parse_protocol_params(text: str, *, context: str = "") -> Dict[str, str]:
    """Parse the ``k=v,...`` tail of a protocol spec string into raw strings.

    Type coercion is left to the protocol's schema (it knows whether
    ``"1"`` means the integer 1 or the boolean True); this function only
    enforces the ``key=value[,key=value...]`` shape.
    """
    where = f" in {context!r}" if context else ""
    params: Dict[str, str] = {}
    for item in text.split(","):
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(
                f"bad protocol parameter {item!r}{where}; expected key=value"
            )
        if key in params:
            raise ConfigurationError(
                f"duplicate protocol parameter {key!r}{where}"
            )
        params[key] = raw.strip()
    return params


@dataclass(frozen=True)
class ProtocolSpec:
    """A named protocol plus its (validated) parameters, grid-ready.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    that equal specs hash equal and the :meth:`token` is stable no matter
    the keyword order the spec was built with.  Build instances through
    :meth:`create` or :meth:`parse` — both validate against the protocol's
    schema, so a typo'd parameter name or an uncoercible value surfaces at
    grid-construction time, not inside a worker process mid-sweep.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def create(cls, name: str, **params: object) -> "ProtocolSpec":
        """Build a validated spec for protocol ``name``.

        Unknown protocols, unknown parameters and type errors all raise
        :class:`~repro.core.errors.ConfigurationError`, the latter two
        with the protocol's full parameter schema in the message.
        """
        definition = protocol_by_name(name)
        validated = definition.schema.validate(name, params)
        return cls(name=name, params=tuple(sorted(validated.items())))

    @classmethod
    def parse(cls, text: str) -> "ProtocolSpec":
        """Parse the CLI spelling, e.g. ``"irrevocable:c=3,x_multiplier=1.5"``.

        A bare name (``"irrevocable"``) selects the protocol at its
        default configuration.
        """
        name, sep, tail = text.partition(":")
        name = name.strip()
        if sep and not tail.strip():
            raise ConfigurationError(
                f"bad protocol spec {text!r}; expected key=value after ':'"
            )
        params = parse_protocol_params(tail, context=text) if sep else {}
        return cls.create(name, **params)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name}:{inner}"

    def token(self) -> str:
        """Stable identity string (the parseable spec form).

        Becomes part of checkpoint task keys, so a sweep resumed with a
        different protocol configuration re-runs instead of replaying
        results measured under different constants.
        """
        return str(self)

    def definition(self) -> ProtocolDefinition:
        """This spec's registry entry."""
        return protocol_by_name(self.name)

    def canonical(self) -> str:
        """The *configuration's* identity: every schema parameter, defaults
        filled in.

        Two specs with equal :meth:`canonical` strings run identical code
        — ``flooding`` and ``flooding:c=2.0`` are distinct specs (and
        distinct :meth:`token`\\ s, since explicitness is part of a spec's
        identity) but the same configuration.  Grid builders use this to
        reject accidentally-duplicated cells.
        """
        full = {
            param.name: param.default
            for param in self.definition().schema.params
        }
        full.update(dict(self.params))
        if not full:
            return self.name
        inner = ",".join(f"{key}={value!r}" for key, value in sorted(full.items()))
        return f"{self.name}:{inner}"

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}
