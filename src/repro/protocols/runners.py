"""Picklable ``(topology, seed)`` runners bound to a protocol spec.

The experiment layer drives algorithms through ``runner(topology, seed)``
callables.  :class:`ProtocolRunner` adapts a
:class:`~repro.protocols.spec.ProtocolSpec` to that shape: a frozen
dataclass of one spec, so parameterised protocol variants flow through the
parallel engine's worker pool unchanged (mirroring
:class:`~repro.dynamics.runners.AdversarialRunner` on the fault side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..election.base import LeaderElectionResult
from ..graphs.topology import Topology
from .registry import ProtocolDefinition
from .spec import ProtocolSpec

__all__ = ["ProtocolRunner", "protocol_runner"]


@dataclass(frozen=True)
class ProtocolRunner:
    """``spec``'s protocol, invoked as a plain ``(topology, seed)`` runner.

    The registry entry is captured at *construction* time (in the parent
    process, where the protocol is registered) and travels inside the
    pickle — the factory is a module-level callable, pickled by reference.
    Resolving by name at call time instead would strand custom
    ``register_protocol`` entries on ``spawn``-start workers, whose fresh
    interpreters never ran the parent's registration.
    """

    spec: ProtocolSpec
    definition: Optional[ProtocolDefinition] = None

    def __post_init__(self) -> None:
        if self.definition is None:
            object.__setattr__(self, "definition", self.spec.definition())
        # Validate once here, not per run: the mapping is invariant for a
        # frozen spec, and this keeps the safety net for raw-constructed
        # (non-create/parse) specs out of the per-run hot path.
        object.__setattr__(
            self,
            "_validated",
            self.definition.schema.validate(self.spec.name, dict(self.spec.params)),
        )

    def __call__(self, topology: Topology, seed: int) -> LeaderElectionResult:
        result = self.definition.factory(topology, seed, **self._validated)
        # Record the configuration on the run itself, so checkpoint records
        # and JSONL exports always say which constants produced a number.
        result.parameters = {**result.parameters, "protocol": self.spec.token()}
        return result


def protocol_runner(spec: Union[ProtocolSpec, str]) -> ProtocolRunner:
    """Build a runner from a spec (or its string spelling, validated here)."""
    if isinstance(spec, str):
        spec = ProtocolSpec.parse(spec)
    return ProtocolRunner(spec)
