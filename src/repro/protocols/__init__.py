"""First-class protocol configuration: registry, schemas, sweepable specs.

``repro.protocols`` makes protocol constants a grid axis.  The registry
(:data:`PROTOCOLS`) maps protocol names to a typed parameter schema and an
entry-point factory; :class:`ProtocolSpec` is the declarative, picklable
value that travels through experiment grids (string round-trip
``"irrevocable:c=3,x_multiplier=1.5"``); :class:`ProtocolRunner` adapts a
spec to the ``runner(topology, seed)`` shape the experiment engine
executes.  See :mod:`repro.workloads.suites.param_grid` for building
parameter grids and the CLI's ``repro-le protocols`` for the registry's
live schema listing.
"""

from .registry import (
    PROTOCOLS,
    ProtocolDefinition,
    describe_protocols,
    protocol_by_name,
    register_protocol,
    run_protocol,
)
from .runners import ProtocolRunner, protocol_runner
from .schema import ParamSpec, ProtocolSchema
from .spec import ProtocolSpec, parse_protocol_params

__all__ = [
    "PROTOCOLS",
    "ParamSpec",
    "ProtocolDefinition",
    "ProtocolRunner",
    "ProtocolSchema",
    "ProtocolSpec",
    "describe_protocols",
    "parse_protocol_params",
    "protocol_by_name",
    "protocol_runner",
    "register_protocol",
    "run_protocol",
]
