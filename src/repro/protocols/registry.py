"""The protocol registry: names -> parameter schema + entry-point factory.

This is the single source of truth for "what algorithms exist and what can
be tuned on them".  Each entry is a :class:`ProtocolDefinition`: a factory
``factory(topology, seed, **params)`` returning a
:class:`~repro.election.base.LeaderElectionResult`, plus the
:class:`~repro.protocols.schema.ProtocolSchema` describing the factory's
tunable constants.  The CLI, the experiment engine and the workload
builders all resolve protocol names here, so registering a protocol once
makes it electable, comparable, sweepable, checkpointable and shardable
everywhere.

The built-in entries expose the paper's tunable constants: the
irrevocable protocol's ``c``/``x_multiplier`` (Theorem 1's phase lengths
and walk counts), the revocable schedule's ``epsilon``/``xi`` and
``extra_estimates``, and the baselines' round/candidate constants.  All
defaults equal the long-standing ``run_*_election`` defaults, so a
default-configured registry run is bit-identical to the legacy entry
points.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines import (
    run_flooding_election,
    run_gilbert_election,
    run_uniform_id_election,
)
from ..core.errors import ConfigurationError
from ..election import run_irrevocable_election, run_revocable_election
from ..election.base import LeaderElectionResult
from ..election.revocable import default_scaled_schedule
from ..graphs.topology import Topology
from .schema import (
    ParamSpec,
    ProtocolSchema,
    check_non_negative,
    check_positive,
    check_unit_open_closed,
    check_unit_open_open,
)

__all__ = [
    "PROTOCOLS",
    "ProtocolDefinition",
    "describe_protocols",
    "protocol_by_name",
    "register_protocol",
    "run_protocol",
]

#: ``factory(topology, seed, **params) -> LeaderElectionResult``.
ProtocolFactory = Callable[..., LeaderElectionResult]


@dataclass(frozen=True)
class ProtocolDefinition:
    """One registered protocol: name, entry-point factory, schema, blurb."""

    name: str
    factory: ProtocolFactory
    schema: ProtocolSchema
    description: str = ""


#: name -> definition.  Populated below; extendable via
#: :func:`register_protocol` (e.g. by downstream experiments registering a
#: custom protocol so it rides the same sweep machinery).
PROTOCOLS: Dict[str, ProtocolDefinition] = {}


def register_protocol(
    name: str,
    factory: ProtocolFactory,
    *,
    params: tuple = (),
    description: str = "",
    replace: bool = False,
) -> ProtocolDefinition:
    """Register a protocol under ``name`` with the given parameter schema.

    ``name`` becomes part of spec strings (``name:k=v,...``) and checkpoint
    task keys, so characters that would break either format are rejected.
    Re-registering an existing name requires ``replace=True``.
    """
    for forbidden in ":|,=":
        if forbidden in name:
            raise ConfigurationError(
                f"protocol name {name!r} may not contain {forbidden!r} "
                f"(reserved by spec strings and checkpoint task keys)"
            )
    if not name:
        raise ConfigurationError("protocol name must be non-empty")
    if name in PROTOCOLS and not replace:
        raise ConfigurationError(
            f"protocol {name!r} is already registered; pass replace=True "
            f"to override it"
        )
    definition = ProtocolDefinition(
        name=name,
        factory=factory,
        schema=ProtocolSchema(params=tuple(params)),
        description=description,
    )
    _check_schema_matches_factory(definition)
    PROTOCOLS[name] = definition
    return definition


def _check_schema_matches_factory(definition: ProtocolDefinition) -> None:
    """Reject schema/factory drift at registration time.

    The schema's defaults are what ``repro-le protocols`` advertises and
    what :meth:`~repro.protocols.spec.ProtocolSpec.canonical` dedups on;
    the factory's keyword defaults are what actually runs.  They live in
    different places, so a mismatch would silently misreport (and
    mis-dedup) configurations — fail loudly instead, at import/registration
    time.  Factories whose signature cannot be introspected, or that take
    ``**kwargs``, are skipped.
    """
    try:
        parameters = inspect.signature(definition.factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/extensions
        return
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        return
    for param in definition.schema.params:
        declared = parameters.get(param.name)
        if declared is None:
            raise ConfigurationError(
                f"protocol {definition.name!r} declares parameter "
                f"{param.name!r} that its factory does not accept"
            )
        if (
            declared.default is not inspect.Parameter.empty
            and declared.default != param.default
        ):
            raise ConfigurationError(
                f"protocol {definition.name!r} parameter {param.name!r}: "
                f"schema default {param.default!r} does not match the "
                f"factory default {declared.default!r}"
            )


def protocol_by_name(name: str) -> ProtocolDefinition:
    """Look up a registered protocol, with a helpful error on a miss."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {sorted(PROTOCOLS)}"
        ) from None


def run_protocol(
    name: str,
    topology: Topology,
    seed: Optional[int] = None,
    **params: object,
) -> LeaderElectionResult:
    """Run one election of protocol ``name`` with the given parameters.

    Parameters are validated against the protocol's schema (so a typo
    raises :class:`~repro.core.errors.ConfigurationError` with the schema
    spelled out) and coerced to their declared types before the factory is
    invoked.
    """
    definition = protocol_by_name(name)
    validated = definition.schema.validate(name, params)
    return definition.factory(topology, seed, **validated)


def describe_protocols() -> List[Dict[str, str]]:
    """Report rows describing every registered protocol (CLI ``protocols``)."""
    return [
        {
            "protocol": definition.name,
            "parameters": definition.schema.describe(),
            "description": definition.description,
        }
        for _, definition in sorted(PROTOCOLS.items())
    ]


# --------------------------------------------------------------------------- #
# built-in protocols
# --------------------------------------------------------------------------- #
#
# The factories are module-level functions (not lambdas) so definitions —
# and anything referencing them — stay picklable for the parallel engine's
# worker processes.


def _irrevocable_factory(
    topology: Topology,
    seed: Optional[int],
    *,
    c: float = 2.0,
    x_multiplier: float = 2.0,
) -> LeaderElectionResult:
    return run_irrevocable_election(
        topology, seed=seed, c=c, x_multiplier=x_multiplier
    )


def _revocable_factory(
    topology: Topology,
    seed: Optional[int],
    *,
    epsilon: float = 0.5,
    xi: float = 0.1,
    extra_estimates: int = 0,
) -> LeaderElectionResult:
    schedule = default_scaled_schedule(topology, epsilon=epsilon, xi=xi)
    return run_revocable_election(
        topology, seed=seed, schedule=schedule, extra_estimates=extra_estimates
    )


def _flooding_factory(
    topology: Topology,
    seed: Optional[int],
    *,
    c: float = 2.0,
    all_nodes_compete: bool = False,
) -> LeaderElectionResult:
    return run_flooding_election(
        topology, seed=seed, c=c, all_nodes_compete=all_nodes_compete
    )


def _gilbert_factory(
    topology: Topology,
    seed: Optional[int],
    *,
    c: float = 2.0,
) -> LeaderElectionResult:
    return run_gilbert_election(topology, seed=seed, c=c)


def _uniform_factory(
    topology: Topology,
    seed: Optional[int],
) -> LeaderElectionResult:
    return run_uniform_id_election(topology, seed=seed)


register_protocol(
    "irrevocable",
    _irrevocable_factory,
    params=(
        ParamSpec(
            "c",
            float,
            2.0,
            "phase-length constant (rounds per phase ~ c·t_mix·log n)",
            check=check_positive,
        ),
        ParamSpec(
            "x_multiplier",
            float,
            2.0,
            "slack multiplier on the walks-per-candidate count x",
            check=check_positive,
        ),
    ),
    description="the paper's Theorem 1 protocol (known n)",
)

register_protocol(
    "revocable",
    _revocable_factory,
    params=(
        ParamSpec(
            "epsilon",
            float,
            0.5,
            "schedule growth exponent, in (0, 1]",
            check=check_unit_open_closed,
        ),
        ParamSpec(
            "xi",
            float,
            0.1,
            "schedule failure-probability target, in (0, 1)",
            check=check_unit_open_open,
        ),
        ParamSpec(
            "extra_estimates",
            int,
            0,
            "extra size-estimate doublings past Theorem 3's stopping point",
            check=check_non_negative,
        ),
    ),
    description="the paper's revocable protocol (unknown n)",
)

register_protocol(
    "flooding",
    _flooding_factory,
    params=(
        ParamSpec(
            "c", float, 2.0, "candidate-sampling constant", check=check_positive
        ),
        ParamSpec(
            "all_nodes_compete",
            bool,
            False,
            "every node competes instead of sampled candidates",
        ),
    ),
    description="Kutten et al.-style flooding baseline",
)

register_protocol(
    "gilbert",
    _gilbert_factory,
    params=(
        ParamSpec("c", float, 2.0, "round/candidate constant", check=check_positive),
    ),
    description="Gilbert et al. baseline",
)

register_protocol(
    "uniform",
    _uniform_factory,
    description="every-node-competes flooding election",
)
