"""A minimal stdlib HTTP endpoint over a result archive.

``repro-le serve --archive results.sqlite`` answers three GET routes
with JSON:

* ``/health`` — liveness plus the archive's run count;
* ``/stats`` — the archive summary
  (:meth:`repro.archive.store.ResultArchive.stats`);
* ``/query`` — the memoized query surface.  Parameters mirror the
  ``sweep``/``query`` CLI spelling: ``suite``, ``algorithms``
  (comma-separated), ``scenario``, ``adversary``, ``adversary_param``
  (repeatable), ``seeds``.  The response carries the cache accounting
  (``report``), the per-cell measurement rows (``cells``) and the
  robustness curves (``curves``); a repeated query is served entirely
  from the archive (``report.simulated_cells == 0``).

``ThreadingHTTPServer`` + per-request SQLite connections keep this
dependency-free and safe for concurrent readers; it is an operational
convenience for sharing an archive, not a hardened public frontend.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Union
from urllib.parse import parse_qs, urlsplit

from ..core.errors import ReproError
from .store import ResultArchive

__all__ = ["ArchiveHTTPServer", "make_server"]


class ArchiveHTTPServer(ThreadingHTTPServer):
    """An HTTP server bound to one archive path and one execution config."""

    #: threads may outlive a shutdown mid-request; daemon threads keep
    #: test processes from hanging on them
    daemon_threads = True

    def __init__(self, address, *, archive_path, config):
        self.archive_path = str(archive_path)
        self.config = config
        super().__init__(address, _ArchiveRequestHandler)


class _ArchiveRequestHandler(BaseHTTPRequestHandler):
    server: ArchiveHTTPServer

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            if url.path == "/health":
                self._respond(200, self._health())
            elif url.path == "/stats":
                self._respond(200, self._stats())
            elif url.path == "/query":
                self._respond(200, self._query(params))
            else:
                self._respond(
                    404,
                    {
                        "error": f"unknown path {url.path!r}",
                        "paths": ["/health", "/stats", "/query"],
                    },
                )
        except ReproError as error:
            self._respond(400, {"error": str(error)})
        except ValueError as error:
            self._respond(400, {"error": f"bad query parameter: {error}"})

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    def _health(self) -> Dict[str, object]:
        with ResultArchive(self.server.archive_path) as archive:
            runs = len(archive)
        return {
            "status": "ok",
            "archive": self.server.archive_path,
            "runs": runs,
        }

    def _stats(self) -> Dict[str, object]:
        with ResultArchive(self.server.archive_path) as archive:
            return archive.stats()

    def _query(self, params: Dict[str, list]) -> Dict[str, object]:
        from .. import api
        from ..analysis.experiments import summarize_results
        from ..analysis.robustness import curves_as_dicts, fold_experiments

        algorithms = None
        if "algorithms" in params:
            algorithms = [
                name
                for raw in params["algorithms"]
                for name in raw.split(",")
                if name
            ]
        seeds = int(_single(params, "seeds", "3"))
        specs, adversarial = api.plan_sweep(
            suite=_single(params, "suite", None),
            algorithms=algorithms,
            scenario=_single(params, "scenario", None),
            adversary=_single(params, "adversary", None),
            adversary_params=params.get("adversary_param"),
            seeds=seeds,
            collect_profile=_single(params, "profile", "0") in ("1", "true"),
        )
        answer = api.query(
            specs, archive=self.server.archive_path, config=self.server.config
        )
        return {
            "report": answer.report.as_dict(),
            "adversarial": adversarial,
            "cells": summarize_results(answer.results),
            "curves": curves_as_dicts(fold_experiments(specs, answer.results)),
        }

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        # The default logger stamps wall-clock dates on stderr per
        # request; a query service embedded in tests and sweep scripts
        # stays quiet instead.
        pass


def _single(params: Dict[str, list], name: str, default: Optional[str]):
    values = params.get(name)
    if not values:
        return default
    if len(values) > 1:
        raise ReproError(f"parameter {name!r} given more than once")
    return values[0]


def make_server(
    *,
    archive: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8765,
    config=None,
) -> ArchiveHTTPServer:
    """Build (and bind, but not run) the archive HTTP server.

    Opening the archive up front validates the path and schema version
    before the socket accepts anything; ``port=0`` binds an ephemeral
    port (see ``server.server_address``).
    """
    from ..api import SweepConfig

    with ResultArchive(archive):
        pass
    return ArchiveHTTPServer(
        (host, port),
        archive_path=archive,
        config=config if config is not None else SweepConfig(),
    )
