"""Persistent, content-addressed archive of completed runs (SQLite).

The checkpoint layer already gives every run a deterministic task key
(:func:`repro.parallel.sharding.task_key`): the spec name, grid
coordinates, topology structure fingerprint, seed, adversary token and
protocol token — everything that decides the run's result, and nothing
that doesn't (backend, worker count and shard layout never enter a key).
:class:`ResultArchive` stores one checkpoint record
(:func:`repro.parallel.checkpoint.result_to_record`) per task key in a
single SQLite file, so completed sweeps *accumulate*: absorbing a second
checkpoint merges by key instead of appending duplicates, and any future
query that wants a run someone already measured gets the archived record
back bit-for-bit.

Why SQLite and not another JSONL file: an archive outlives any one sweep
and is queried by key *set* ("which of these 4000 task keys do you
hold?"), which the indexed ``runs`` table answers without loading
everything — the columnar-archive direction the ROADMAP's cross-machine
item names.  Concurrency safety comes from the same discipline the JSONL
store gets from staged partials, provided here by the engine itself:
every write happens inside a transaction (an interrupted writer rolls
back to the last complete batch, never a torn tail), writers serialize
on the database lock (``timeout_seconds`` bounds the wait), and
``INSERT OR REPLACE`` keyed on the task key makes overlapping writers —
two shard jobs archiving the same grid — converge to last-write-wins
per key instead of conflicting.

The schema is versioned: an archive written by a future incompatible
build is *refused* (:class:`~repro.core.errors.ConfigurationError`), not
misread.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.errors import ConfigurationError

__all__ = [
    "SCHEMA_VERSION",
    "TaskCoordinates",
    "ResultArchive",
    "parse_task_key",
]

#: Version of the on-disk layout.  Bump on any incompatible change to the
#: tables below; old builds must refuse newer archives rather than
#: misinterpret them.
SCHEMA_VERSION = 1

#: Keys are fetched in bounded ``IN (...)`` chunks: SQLite caps bound
#: parameters per statement (999 in older builds), and a query's wanted
#: set can be arbitrarily large.
_FETCH_CHUNK = 500


@dataclass(frozen=True)
class TaskCoordinates:
    """The parsed components of one deterministic task key."""

    spec_name: str
    topology_index: int
    topology_name: str
    fingerprint: str
    seed_index: int
    seed: int
    adversary: str
    protocol: str


def parse_task_key(key: str) -> TaskCoordinates:
    """Split a task key back into its components.

    The key format (see :func:`repro.parallel.sharding.task_key`) is
    ``spec|topology_index|topology_name|fingerprint|seed_index|seed|``
    ``adversary`` with ``|protocol`` appended only when the spec carries a
    protocol token — 7 or 8 segments, none of which contain ``|``.
    """
    parts = key.split("|")
    if len(parts) == 7:
        parts.append("")
    if len(parts) != 8:
        raise ConfigurationError(
            f"malformed task key {key!r}: expected 7 or 8 |-separated "
            f"segments, got {len(parts)}"
        )
    try:
        topology_index = int(parts[1])
        seed_index = int(parts[4])
        seed = int(parts[5])
    except ValueError as error:
        raise ConfigurationError(
            f"malformed task key {key!r}: non-integer grid coordinate "
            f"({error})"
        ) from error
    return TaskCoordinates(
        spec_name=parts[0],
        topology_index=topology_index,
        topology_name=parts[2],
        fingerprint=parts[3],
        seed_index=seed_index,
        seed=seed,
        adversary=parts[6],
        protocol=parts[7],
    )


class ResultArchive:
    """A SQLite archive of completed runs, keyed by deterministic task key.

    ``add_records`` absorbs checkpoint records (append-merge: replacing a
    key is idempotent because re-runs are deterministic), ``fetch``
    answers a wanted-key set with the archived records, and ``stats``
    summarises what the archive holds.  Open archives are context
    managers::

        with ResultArchive("results.sqlite") as archive:
            archive.add_records(store.load())
            hits = archive.fetch(wanted_keys)
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=timeout_seconds)
        try:
            self._init_schema()
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise ConfigurationError(
                f"{self.path} is not a result archive (unreadable as a "
                f"SQLite database: {error}); if a writer died mid-create, "
                f"delete the file and re-populate with `repro-le archive "
                f"add`"
            ) from error

    # ------------------------------------------------------------------ #
    # schema
    # ------------------------------------------------------------------ #
    def _init_schema(self) -> None:
        have_meta = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "AND name='archive_meta'"
        ).fetchone()
        if have_meta is None:
            foreign = self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            ).fetchone()
            if foreign is not None:
                raise ConfigurationError(
                    f"{self.path} is a SQLite database but not a result "
                    f"archive (no archive_meta table; found table "
                    f"{foreign[0]!r}) — refusing to write into a foreign "
                    f"database"
                )
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS archive_meta ("
                "  key TEXT PRIMARY KEY,"
                "  value TEXT NOT NULL"
                ")"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                "  task_key TEXT PRIMARY KEY,"
                "  spec_name TEXT NOT NULL,"
                "  topology_index INTEGER NOT NULL,"
                "  topology_name TEXT NOT NULL,"
                "  fingerprint TEXT NOT NULL,"
                "  seed_index INTEGER NOT NULL,"
                "  seed INTEGER NOT NULL,"
                "  adversary TEXT NOT NULL,"
                "  protocol TEXT NOT NULL,"
                "  record TEXT NOT NULL"
                ")"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_by_spec "
                "ON runs (spec_name, topology_index)"
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO archive_meta (key, value) "
                "VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        row = self._conn.execute(
            "SELECT value FROM archive_meta WHERE key='schema_version'"
        ).fetchone()
        stored = row[0] if row else None
        if stored != str(SCHEMA_VERSION):
            raise ConfigurationError(
                f"archive {self.path} has schema version {stored}; this "
                f"build reads version {SCHEMA_VERSION} — use a matching "
                f"build or re-populate a fresh archive"
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultArchive":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def __contains__(self, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM runs WHERE task_key = ?", (key,)
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def add_records(self, records: Mapping[str, Mapping[str, object]]) -> int:
        """Absorb checkpoint records keyed by task key; return the newly added count.

        Existing keys are *replaced* (runs are deterministic, so any two
        records for one key describe the same measurement — last write
        wins and overlapping writers converge).  The whole batch commits
        in one transaction: an interrupted add leaves the archive at its
        previous complete state.
        """
        if not records:
            return 0
        keys = list(records.keys())
        existing = 0
        for chunk in _chunks(keys, _FETCH_CHUNK):
            placeholders = ",".join("?" for _ in chunk)
            existing += int(
                self._conn.execute(
                    f"SELECT COUNT(*) FROM runs WHERE task_key IN ({placeholders})",
                    chunk,
                ).fetchone()[0]
            )
        rows = []
        for key in keys:
            coords = parse_task_key(key)
            rows.append(
                (
                    key,
                    coords.spec_name,
                    coords.topology_index,
                    coords.topology_name,
                    coords.fingerprint,
                    coords.seed_index,
                    coords.seed,
                    coords.adversary,
                    coords.protocol,
                    json.dumps(records[key], sort_keys=True),
                )
            )
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO runs (task_key, spec_name, "
                "topology_index, topology_name, fingerprint, seed_index, "
                "seed, adversary, protocol, record) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(keys) - existing

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def fetch(self, keys: Iterable[str]) -> Dict[str, Dict[str, object]]:
        """The archived records of ``keys`` (missing keys simply absent)."""
        wanted = list(keys)
        hits: Dict[str, Dict[str, object]] = {}
        for chunk in _chunks(wanted, _FETCH_CHUNK):
            placeholders = ",".join("?" for _ in chunk)
            for key, payload in self._conn.execute(
                f"SELECT task_key, record FROM runs "
                f"WHERE task_key IN ({placeholders})",
                chunk,
            ):
                hits[key] = json.loads(payload)
        return hits

    def keys(self) -> List[str]:
        """Every archived task key, in sorted order."""
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT task_key FROM runs ORDER BY task_key"
            )
        ]

    def stats(self) -> Dict[str, object]:
        """Summary of the archive's contents (for ``archive stats`` and ``/stats``)."""
        specs = [
            {"spec": row[0], "runs": row[1]}
            for row in self._conn.execute(
                "SELECT spec_name, COUNT(*) FROM runs "
                "GROUP BY spec_name ORDER BY spec_name"
            )
        ]
        adversaries = int(
            self._conn.execute(
                "SELECT COUNT(DISTINCT adversary) FROM runs WHERE adversary != ''"
            ).fetchone()[0]
        )
        protocols = int(
            self._conn.execute(
                "SELECT COUNT(DISTINCT protocol) FROM runs WHERE protocol != ''"
            ).fetchone()[0]
        )
        return {
            "path": str(self.path),
            "schema_version": SCHEMA_VERSION,
            "runs": len(self),
            "specs": len(specs),
            "distinct_adversaries": adversaries,
            "distinct_protocols": protocols,
            "per_spec": specs,
        }


def _chunks(items: List[str], size: int) -> Iterable[List[str]]:
    for start in range(0, len(items), size):
        yield items[start : start + size]
