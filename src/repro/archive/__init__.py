"""Persistent result archive + memoized query layer.

The deterministic task keys the checkpoint layer assigns every run make
results *content-addressable*: the same (spec, topology, seed,
adversary, protocol) cell always folds from the same records, no matter
which sweep, worker count or shard layout produced them.  This package
builds the "sweep results as a service" story on top of that:

* :class:`~repro.archive.store.ResultArchive` — a schema-versioned
  SQLite archive, one row per run record, append-merge by task key;
* :class:`~repro.archive.sink.ArchiveSink` — archive live during a
  sweep (``repro-le sweep --archive``);
* :func:`~repro.archive.query.query_experiments` — answer a grid from
  the archive, simulate only the misses, write them back
  (``repro-le query``, :func:`repro.api.query`);
* :mod:`repro.archive.service` — the stdlib HTTP endpoint
  (``repro-le serve``, :func:`repro.api.serve`).
"""

from .query import QueryReport, QueryResult, query_experiments
from .sink import ArchiveSink
from .store import SCHEMA_VERSION, ResultArchive, TaskCoordinates, parse_task_key

__all__ = [
    "SCHEMA_VERSION",
    "ArchiveSink",
    "QueryReport",
    "QueryResult",
    "ResultArchive",
    "TaskCoordinates",
    "parse_task_key",
    "query_experiments",
]
