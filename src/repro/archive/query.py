"""Memoized experiment queries: archive hits + simulated misses.

``query_experiments(specs, archive=...)`` answers an experiment grid the
way a cache answers reads: it expands the specs into their deterministic
task keys, serves every key the archive holds, and dispatches *only the
missing runs* through :func:`repro.parallel.runner.run_experiments` —
the adaptive scheduler, any worker count.  Newly simulated runs are
written back, so archives only ever grow and the second identical query
simulates nothing.

The fold is not reimplemented here.  Archive hits are staged into a
temporary checkpoint and the grid is run *against that checkpoint*: the
engine's restore path replays the hits and executes the misses through
the exact same streaming accumulators as any other sweep, which is what
pins query results bit-identical to a from-scratch ``run_experiments``
(wall-clock column aside — a hit replays the wall-clock measured when
the run actually executed).
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple, Union

from ..analysis.experiments import ExperimentResult, ExperimentSpec
from ..analysis.streaming import ResultSink
from ..core.errors import ConfigurationError
from ..parallel.runner import run_experiments
from ..parallel.sharding import expand_run_tasks
from ..parallel.store import JsonlCheckpointStore
from .store import ResultArchive

__all__ = ["QueryReport", "QueryResult", "query_experiments"]

#: ``run_experiments`` knobs a query may not override: the query layer
#: owns the staging checkpoint, and sharding/retention belong to the
#: populate sweeps, not the read path.
_RESERVED_KWARGS = (
    "checkpoint",
    "checkpoint_compact",
    "checkpoint_format",
    "checkpoint_flush_interval",
    "shard",
    "keep_results",
)


@dataclass(frozen=True)
class QueryReport:
    """Cache accounting of one query."""

    #: total runs the grid wants
    requested_runs: int
    #: runs served from the archive
    archived_runs: int
    #: runs actually executed (requested - archived)
    simulated_runs: int
    #: distinct (spec, topology) cells that needed at least one simulation
    simulated_cells: int
    #: runs newly written back to the archive
    archive_added: int

    @property
    def hit_rate(self) -> float:
        if self.requested_runs == 0:
            return 0.0
        return self.archived_runs / self.requested_runs

    def as_dict(self) -> Dict[str, object]:
        return {
            "requested_runs": self.requested_runs,
            "archived_runs": self.archived_runs,
            "simulated_runs": self.simulated_runs,
            "simulated_cells": self.simulated_cells,
            "archive_added": self.archive_added,
            "hit_rate": self.hit_rate,
        }


@dataclass
class QueryResult:
    """A query's folded results plus its cache accounting."""

    results: List[ExperimentResult]
    report: QueryReport


def query_experiments(
    specs: Sequence[ExperimentSpec],
    *,
    archive: Union[str, Path, ResultArchive],
    sinks: Sequence[ResultSink] = (),
    **runner_kwargs,
) -> QueryResult:
    """Answer an experiment grid from the archive, simulating only misses.

    ``runner_kwargs`` pass through to
    :func:`~repro.parallel.runner.run_experiments` (``workers``,
    ``backend``, ``dispatch``, ``derive_seeds``/``base_seed``, ...) for
    the runs that do execute; checkpointing and sharding knobs are
    reserved — the query stages its own checkpoint, and sharded populate
    belongs to ``sweep``.
    """
    for reserved in _RESERVED_KWARGS:
        if reserved in runner_kwargs:
            raise ConfigurationError(
                f"query_experiments() does not accept {reserved!r}: the "
                f"query layer stages its own checkpoint; populate the "
                f"archive with sweep/archive-add instead"
            )
    derive_seeds = bool(runner_kwargs.get("derive_seeds", False))
    base_seed = runner_kwargs.get("base_seed")

    wanted: Set[str] = set()
    cell_of_key: Dict[str, Tuple[str, int]] = {}
    for spec in specs:
        for task in expand_run_tasks(
            spec, derive_seeds=derive_seeds, base_seed=base_seed
        ):
            wanted.add(task.key)
            cell_of_key[task.key] = (task.spec_name, task.topology_index)

    if isinstance(archive, ResultArchive):
        opened = None
        store = archive
    else:
        opened = ResultArchive(archive)
        store = opened
    try:
        hits = store.fetch(sorted(wanted))
        missing = wanted - set(hits)
        staging_dir = Path(tempfile.mkdtemp(prefix="repro-query-"))
        try:
            staging = staging_dir / "query-checkpoint.jsonl"
            seed_store = JsonlCheckpointStore(staging, flush_interval_seconds=0.0)
            seed_store.load()
            for key in sorted(hits):
                seed_store.add(key, hits[key])
            seed_store.flush()

            results = run_experiments(
                specs,
                checkpoint=staging,
                sinks=sinks,
                **runner_kwargs,
            )

            executed = JsonlCheckpointStore(staging).load()
            new_records = {
                key: record
                for key, record in executed.items()
                if key in missing
            }
        finally:
            shutil.rmtree(staging_dir, ignore_errors=True)
        added = store.add_records(new_records)
    finally:
        if opened is not None:
            opened.close()

    report = QueryReport(
        requested_runs=len(wanted),
        archived_runs=len(hits),
        simulated_runs=len(missing),
        simulated_cells=len({cell_of_key[key] for key in missing}),
        archive_added=added,
    )
    return QueryResult(results=results, report=report)
