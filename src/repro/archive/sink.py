"""A :class:`~repro.analysis.streaming.ResultSink` that archives live.

``repro-le sweep --archive results.sqlite`` composes this sink into the
sweep's pipeline: every completed run's checkpoint record lands in the
archive as the sweep progresses, so the sweep *is* the populate step —
no separate ``archive add`` pass over its checkpoint afterwards.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import ExperimentSpec
from ..analysis.streaming import ResultSink
from ..core.errors import ConfigurationError
from ..parallel.checkpoint import result_to_record
from ..parallel.sharding import expand_run_tasks
from .store import ResultArchive

__all__ = ["ArchiveSink"]


class ArchiveSink(ResultSink):
    """Stream completed runs into a :class:`~repro.archive.store.ResultArchive`.

    The sink is constructed with the sweep's specs so it can translate
    each emitted run's grid coordinates back into its deterministic task
    key (the same :func:`~repro.parallel.sharding.expand_run_tasks`
    expansion the engine schedules from); ``derive_seeds``/``base_seed``
    must match the sweep's so the keys do too.

    Records buffer and flush in batches (one archive transaction each).
    ``abort`` flushes too: unlike an export file, completed runs are
    real measurements worth keeping even when the sweep died mid-grid —
    the next query or resumed sweep picks them up as cache hits.
    """

    def __init__(
        self,
        archive: Union[str, Path, ResultArchive],
        specs: Sequence[ExperimentSpec],
        *,
        derive_seeds: bool = False,
        base_seed: Optional[int] = None,
        flush_every: int = 64,
    ) -> None:
        if isinstance(archive, ResultArchive):
            self._archive: Optional[ResultArchive] = archive
            self._owns_archive = False
        else:
            self._archive = ResultArchive(archive)
            self._owns_archive = True
        self._flush_every = max(1, int(flush_every))
        self._pending: Dict[str, Dict[str, object]] = {}
        self._keys: Dict[Tuple[str, int, int], str] = {}
        for spec in specs:
            for task in expand_run_tasks(
                spec, derive_seeds=derive_seeds, base_seed=base_seed
            ):
                self._keys[
                    (task.spec_name, task.topology_index, task.seed_index)
                ] = task.key

    def emit(self, spec_name, topology_index, seed_index, result, wall_clock_seconds):
        key = self._keys.get((spec_name, topology_index, seed_index))
        if key is None:
            raise ConfigurationError(
                f"ArchiveSink received a run outside its specs: "
                f"{spec_name!r} topology {topology_index} seed index "
                f"{seed_index} (was the sink built from the same specs "
                f"and derive_seeds/base_seed as the sweep?)"
            )
        self._pending[key] = result_to_record(result, wall_clock_seconds)
        if len(self._pending) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        if self._pending and self._archive is not None:
            self._archive.add_records(self._pending)
            self._pending = {}

    def close(self) -> None:
        self.flush()
        if self._owns_archive and self._archive is not None:
            self._archive.close()
            self._archive = None

    def abort(self) -> None:
        # Completed runs are deterministic measurements: keep them.
        self.close()
