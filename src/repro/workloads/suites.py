"""Named topology suites used by benchmarks and examples.

The paper's bounds behave very differently depending on expansion:

* on *well-connected* graphs (``t_mix = Θ̃(1/Φ)``) Theorem 1's protocol is
  near-optimal and beats both the ``Ω(m)`` flooding bound and the Gilbert
  et al. message bound;
* on *poorly-connected* graphs (cycles, barbells) mixing is slow and the
  advantage narrows or reverses;
* the revocable protocol's cost is dominated by the isoperimetric number.

The suites below fix representative families at a few sizes so every
benchmark and example samples the same regimes.  All generators are seeded,
so a suite is fully reproducible.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..core.errors import ConfigurationError
from ..graphs import generators
from ..graphs.topology import Topology

__all__ = [
    "well_connected_suite",
    "poorly_connected_suite",
    "mixed_suite",
    "scaling_family",
    "tiny_suite",
    "SUITES",
    "suite_by_name",
    "sweep_specs",
]


def well_connected_suite(sizes: Sequence[int] = (32, 64, 128), *, seed: int = 7) -> List[Topology]:
    """Expanders and dense graphs: random regular, hypercube, complete."""
    suite: List[Topology] = []
    for n in sizes:
        suite.append(generators.random_regular(n, 4, seed=seed + n))
    dimensions = sorted({max(3, n.bit_length() - 1) for n in sizes})
    for dimension in dimensions:
        suite.append(generators.hypercube(dimension))
    suite.append(generators.complete(max(8, min(sizes))))
    return suite


def poorly_connected_suite(sizes: Sequence[int] = (16, 32, 64), *, seed: int = 7) -> List[Topology]:
    """Slow-mixing graphs: cycles, paths, barbells."""
    suite: List[Topology] = []
    for n in sizes:
        suite.append(generators.cycle(n))
    suite.append(generators.path(max(8, min(sizes))))
    suite.append(generators.barbell(max(4, min(sizes) // 2)))
    return suite


def mixed_suite(*, seed: int = 7) -> List[Topology]:
    """A small cross-section of both regimes plus intermediate topologies."""
    return [
        generators.random_regular(64, 4, seed=seed),
        generators.hypercube(6),
        generators.torus_2d(8, 8),
        generators.cycle(32),
        generators.barbell(16),
        generators.binary_tree(5),
    ]


def scaling_family(
    family: str,
    sizes: Sequence[int],
    *,
    seed: int = 7,
) -> List[Topology]:
    """A single graph family across sizes, for scaling (figure-style) series.

    ``family`` is one of ``"random_regular"``, ``"cycle"``, ``"torus"``,
    ``"hypercube"``, ``"complete"``.
    """
    builders: Dict[str, Callable[[int], Topology]] = {
        "random_regular": lambda n: generators.random_regular(n, 4, seed=seed + n),
        "cycle": generators.cycle,
        "complete": generators.complete,
        "torus": lambda n: generators.torus_2d(_square_side(n), _square_side(n)),
        "hypercube": lambda n: generators.hypercube(max(2, (n - 1).bit_length())),
    }
    if family not in builders:
        raise ConfigurationError(
            f"unknown scaling family {family!r}; available: {sorted(builders)}"
        )
    return [builders[family](n) for n in sizes]


def tiny_suite(*, seed: int = 7) -> List[Topology]:
    """Very small graphs for the (intrinsically expensive) revocable election."""
    return [
        generators.complete(4),
        generators.complete(6),
        generators.cycle(5),
        generators.star(5),
        generators.grid_2d(2, 3),
    ]


def _square_side(n: int) -> int:
    side = max(3, round(n ** 0.5))
    return side


SUITES: Dict[str, Callable[..., List[Topology]]] = {
    "well_connected": well_connected_suite,
    "poorly_connected": poorly_connected_suite,
    "mixed": mixed_suite,
    "tiny": tiny_suite,
}


def suite_by_name(name: str, **kwargs) -> List[Topology]:
    """Look up a suite builder by name and call it."""
    try:
        builder = SUITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}"
        ) from None
    return builder(**kwargs)


def sweep_specs(
    algorithms: Sequence[str],
    topologies: Sequence[Topology],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    collect_profile: bool = True,
) -> List["ExperimentSpec"]:
    """Build one :class:`~repro.analysis.experiments.ExperimentSpec` per algorithm.

    ``algorithms`` are names from :data:`repro.analysis.runners.RUNNERS`,
    so the resulting specs are picklable and can be handed directly to the
    parallel engine (``repro.parallel.run_experiments``) or to the CLI's
    ``sweep`` command.
    """
    from ..analysis.experiments import ExperimentSpec
    from ..analysis.runners import runner_by_name

    return [
        ExperimentSpec(
            name=name,
            runner=runner_by_name(name),
            topologies=list(topologies),
            seeds=tuple(seeds),
            collect_profile=collect_profile,
        )
        for name in algorithms
    ]
