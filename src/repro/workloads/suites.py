"""Named topology suites used by benchmarks and examples.

The paper's bounds behave very differently depending on expansion:

* on *well-connected* graphs (``t_mix = Θ̃(1/Φ)``) Theorem 1's protocol is
  near-optimal and beats both the ``Ω(m)`` flooding bound and the Gilbert
  et al. message bound;
* on *poorly-connected* graphs (cycles, barbells) mixing is slow and the
  advantage narrows or reverses;
* the revocable protocol's cost is dominated by the isoperimetric number.

The suites below fix representative families at a few sizes so every
benchmark and example samples the same regimes.  All generators are seeded,
so a suite is fully reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..graphs import generators
from ..graphs.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dynamics.spec import AdversarySpec

__all__ = [
    "well_connected_suite",
    "poorly_connected_suite",
    "mixed_suite",
    "scaling_family",
    "tiny_suite",
    "SUITES",
    "suite_by_name",
    "sweep_specs",
    "DYNAMIC_SCENARIOS",
    "dynamic_scenario",
]


def well_connected_suite(sizes: Sequence[int] = (32, 64, 128), *, seed: int = 7) -> List[Topology]:
    """Expanders and dense graphs: random regular, hypercube, complete."""
    suite: List[Topology] = []
    for n in sizes:
        suite.append(generators.random_regular(n, 4, seed=seed + n))
    dimensions = sorted({max(3, n.bit_length() - 1) for n in sizes})
    for dimension in dimensions:
        suite.append(generators.hypercube(dimension))
    suite.append(generators.complete(max(8, min(sizes))))
    return suite


def poorly_connected_suite(sizes: Sequence[int] = (16, 32, 64), *, seed: int = 7) -> List[Topology]:
    """Slow-mixing graphs: cycles, paths, barbells."""
    suite: List[Topology] = []
    for n in sizes:
        suite.append(generators.cycle(n))
    suite.append(generators.path(max(8, min(sizes))))
    suite.append(generators.barbell(max(4, min(sizes) // 2)))
    return suite


def mixed_suite(*, seed: int = 7) -> List[Topology]:
    """A small cross-section of both regimes plus intermediate topologies."""
    return [
        generators.random_regular(64, 4, seed=seed),
        generators.hypercube(6),
        generators.torus_2d(8, 8),
        generators.cycle(32),
        generators.barbell(16),
        generators.binary_tree(5),
    ]


def scaling_family(
    family: str,
    sizes: Sequence[int],
    *,
    seed: int = 7,
) -> List[Topology]:
    """A single graph family across sizes, for scaling (figure-style) series.

    ``family`` is one of ``"random_regular"``, ``"cycle"``, ``"torus"``,
    ``"hypercube"``, ``"complete"``.
    """
    builders: Dict[str, Callable[[int], Topology]] = {
        "random_regular": lambda n: generators.random_regular(n, 4, seed=seed + n),
        "cycle": generators.cycle,
        "complete": generators.complete,
        "torus": lambda n: generators.torus_2d(_square_side(n), _square_side(n)),
        "hypercube": lambda n: generators.hypercube(max(2, (n - 1).bit_length())),
    }
    if family not in builders:
        raise ConfigurationError(
            f"unknown scaling family {family!r}; available: {sorted(builders)}"
        )
    return [builders[family](n) for n in sizes]


def tiny_suite(*, seed: int = 7) -> List[Topology]:
    """Very small graphs for the (intrinsically expensive) revocable election."""
    return [
        generators.complete(4),
        generators.complete(6),
        generators.cycle(5),
        generators.star(5),
        generators.grid_2d(2, 3),
    ]


def _square_side(n: int) -> int:
    side = max(3, round(n ** 0.5))
    return side


SUITES: Dict[str, Callable[..., List[Topology]]] = {
    "well_connected": well_connected_suite,
    "poorly_connected": poorly_connected_suite,
    "mixed": mixed_suite,
    "tiny": tiny_suite,
}


def suite_by_name(name: str, **kwargs) -> List[Topology]:
    """Look up a suite builder by name and call it."""
    try:
        builder = SUITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}"
        ) from None
    return builder(**kwargs)


def sweep_specs(
    algorithms: Sequence[str],
    topologies: Sequence[Topology],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    collect_profile: bool = True,
    adversary: Optional["AdversarySpec"] = None,
) -> List["ExperimentSpec"]:
    """Build one :class:`~repro.analysis.experiments.ExperimentSpec` per algorithm.

    ``algorithms`` are names from :data:`repro.analysis.runners.RUNNERS`,
    so the resulting specs are picklable and can be handed directly to the
    parallel engine (``repro.parallel.run_experiments``) or to the CLI's
    ``sweep`` command.  ``adversary`` attaches one fault model
    (:class:`~repro.dynamics.spec.AdversarySpec`) to every spec; use
    :func:`repro.dynamics.robustness_specs` for full (algorithm ×
    adversary) grids.
    """
    from ..analysis.experiments import ExperimentSpec
    from ..analysis.runners import runner_by_name

    return [
        ExperimentSpec(
            name=name if adversary is None else f"{name}@{adversary.token()}",
            runner=runner_by_name(name),
            topologies=list(topologies),
            seeds=tuple(seeds),
            collect_profile=collect_profile,
            adversary=adversary,
        )
        for name in algorithms
    ]


# --------------------------------------------------------------------------- #
# dynamic (adversarial) scenario suites
# --------------------------------------------------------------------------- #


def lossy_scenario() -> List[Optional["AdversarySpec"]]:
    """Benign-to-harsh i.i.d. message loss, baseline first."""
    from ..dynamics.spec import AdversarySpec

    return [None] + [
        AdversarySpec.create("loss", p=p) for p in (0.01, 0.05, 0.1)
    ]


def laggy_scenario() -> List[Optional["AdversarySpec"]]:
    """Bounded message delay at increasing rates and bounds."""
    from ..dynamics.spec import AdversarySpec

    return [
        None,
        AdversarySpec.create("delay", p=0.1, max_delay=2),
        AdversarySpec.create("delay", p=0.3, max_delay=5),
    ]


def flaky_links_scenario() -> List[Optional["AdversarySpec"]]:
    """Link churn from occasional blips to sustained instability."""
    from ..dynamics.spec import AdversarySpec

    return [
        None,
        AdversarySpec.create("churn", p_down=0.02, p_up=0.5),
        AdversarySpec.create("churn", p_down=0.1, p_up=0.25),
    ]


def crashy_scenario() -> List[Optional["AdversarySpec"]]:
    """Crash-stop failures early in the execution.

    The horizon is short on purpose: crash rounds are uniform over
    ``1..horizon``, and a crash only matters if it lands before the
    protocol finishes — flooding completes in ``diameter + 2`` rounds, a
    handful on the small suites.
    """
    from ..dynamics.spec import AdversarySpec

    return [
        None,
        AdversarySpec.create("crash", p=0.1, horizon=3),
        AdversarySpec.create("crash", p=0.3, horizon=3),
    ]


def stormy_scenario() -> List[Optional["AdversarySpec"]]:
    """Loss, delay and churn *together* in one run, dialled up jointly.

    The single-model ladders isolate one failure mode at a time; real
    deployments degrade on all of them at once.  Built on the composed
    adversary, so each rung perturbs every run with all three models,
    each drawing from its own seed-derived RNG stream.
    """
    from ..dynamics.spec import AdversarySpec
    from ..dynamics.sweeps import composed_spec

    return [
        None,
        composed_spec(
            AdversarySpec.create("loss", p=0.01),
            AdversarySpec.create("delay", p=0.05, max_delay=2),
        ),
        composed_spec(
            AdversarySpec.create("loss", p=0.05),
            AdversarySpec.create("delay", p=0.1, max_delay=3),
            AdversarySpec.create("churn", p_down=0.02, p_up=0.5),
        ),
    ]


#: Named adversary ladders for robustness sweeps.  Each scenario starts
#: with ``None`` (the paper's reliable execution model) so every sweep
#: carries its own calibration cells; feed one to
#: :func:`repro.dynamics.robustness_specs` together with a topology suite.
DYNAMIC_SCENARIOS: Dict[str, Callable[[], List[Optional["AdversarySpec"]]]] = {
    "lossy": lossy_scenario,
    "laggy": laggy_scenario,
    "flaky-links": flaky_links_scenario,
    "crashy": crashy_scenario,
    "stormy": stormy_scenario,
}


def dynamic_scenario(name: str) -> List[Optional["AdversarySpec"]]:
    """Look up a named dynamic scenario (a ladder of adversary specs)."""
    try:
        builder = DYNAMIC_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dynamic scenario {name!r}; available: "
            f"{sorted(DYNAMIC_SCENARIOS)}"
        ) from None
    return builder()
