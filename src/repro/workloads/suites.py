"""Named topology suites used by benchmarks and examples.

The paper's bounds behave very differently depending on expansion:

* on *well-connected* graphs (``t_mix = Θ̃(1/Φ)``) Theorem 1's protocol is
  near-optimal and beats both the ``Ω(m)`` flooding bound and the Gilbert
  et al. message bound;
* on *poorly-connected* graphs (cycles, barbells) mixing is slow and the
  advantage narrows or reverses;
* the revocable protocol's cost is dominated by the isoperimetric number.

The suites below fix representative families at a few sizes so every
benchmark and example samples the same regimes.  All generators are seeded,
so a suite is fully reproducible.
"""

from __future__ import annotations

import itertools
import warnings
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from ..core.errors import ConfigurationError
from ..graphs import generators
from ..graphs.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.experiments import ExperimentSpec
    from ..dynamics.spec import AdversarySpec
    from ..protocols.spec import ProtocolSpec

__all__ = [
    "well_connected_suite",
    "poorly_connected_suite",
    "mixed_suite",
    "scaling_family",
    "tiny_suite",
    "SUITES",
    "suite_by_name",
    "sweep_specs",
    "param_grid",
    "robustness_curves",
    "DYNAMIC_SCENARIOS",
    "dynamic_scenario",
    "PROTOCOL_SCENARIOS",
    "protocol_scenario",
]

#: What a sweep accepts as one algorithm: a registered runner name
#: ("flooding"), a protocol spec string with parameters
#: ("irrevocable:c=3"), or a ready :class:`~repro.protocols.spec.ProtocolSpec`.
Algorithm = Union[str, "ProtocolSpec"]


def well_connected_suite(sizes: Sequence[int] = (32, 64, 128), *, seed: int = 7) -> List[Topology]:
    """Expanders and dense graphs: random regular, hypercube, complete."""
    suite: List[Topology] = []
    for n in sizes:
        suite.append(generators.random_regular(n, 4, seed=seed + n))
    dimensions = sorted({max(3, n.bit_length() - 1) for n in sizes})
    for dimension in dimensions:
        suite.append(generators.hypercube(dimension))
    suite.append(generators.complete(max(8, min(sizes))))
    return suite


def poorly_connected_suite(sizes: Sequence[int] = (16, 32, 64), *, seed: int = 7) -> List[Topology]:
    """Slow-mixing graphs: cycles, paths, barbells."""
    suite: List[Topology] = []
    for n in sizes:
        suite.append(generators.cycle(n))
    suite.append(generators.path(max(8, min(sizes))))
    suite.append(generators.barbell(max(4, min(sizes) // 2)))
    return suite


def mixed_suite(*, seed: int = 7) -> List[Topology]:
    """A small cross-section of both regimes plus intermediate topologies."""
    return [
        generators.random_regular(64, 4, seed=seed),
        generators.hypercube(6),
        generators.torus_2d(8, 8),
        generators.cycle(32),
        generators.barbell(16),
        generators.binary_tree(5),
    ]


def scaling_family(
    family: str,
    sizes: Sequence[int],
    *,
    seed: int = 7,
) -> List[Topology]:
    """A single graph family across sizes, for scaling (figure-style) series.

    ``family`` is one of ``"random_regular"``, ``"cycle"``, ``"torus"``,
    ``"hypercube"``, ``"complete"``.
    """
    builders: Dict[str, Callable[[int], Topology]] = {
        "random_regular": lambda n: generators.random_regular(n, 4, seed=seed + n),
        "cycle": generators.cycle,
        "complete": generators.complete,
        "torus": lambda n: generators.torus_2d(_square_side(n), _square_side(n)),
        "hypercube": lambda n: generators.hypercube(max(2, (n - 1).bit_length())),
    }
    if family not in builders:
        raise ConfigurationError(
            f"unknown scaling family {family!r}; available: {sorted(builders)}"
        )
    return [builders[family](n) for n in sizes]


def tiny_suite(*, seed: int = 7) -> List[Topology]:
    """Very small graphs for the (intrinsically expensive) revocable election."""
    return [
        generators.complete(4),
        generators.complete(6),
        generators.cycle(5),
        generators.star(5),
        generators.grid_2d(2, 3),
    ]


def _square_side(n: int) -> int:
    side = max(3, round(n ** 0.5))
    return side


SUITES: Dict[str, Callable[..., List[Topology]]] = {
    "well_connected": well_connected_suite,
    "poorly_connected": poorly_connected_suite,
    "mixed": mixed_suite,
    "tiny": tiny_suite,
}


def suite_by_name(name: str, **kwargs) -> List[Topology]:
    """Look up a suite builder by name and call it."""
    try:
        builder = SUITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}"
        ) from None
    return builder(**kwargs)


def sweep_specs(
    algorithms: Sequence[Algorithm],
    topologies: Sequence[Topology],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    collect_profile: bool = True,
    adversary: Optional["AdversarySpec"] = None,
) -> List["ExperimentSpec"]:
    """Build one :class:`~repro.analysis.experiments.ExperimentSpec` per algorithm.

    Each entry of ``algorithms`` is either a plain runner name from
    :data:`repro.analysis.runners.RUNNERS` ("flooding" — the legacy path,
    keeping long-standing checkpoint task keys), a protocol spec string
    with parameters ("irrevocable:c=3,x_multiplier=1.5"), or a ready
    :class:`~repro.protocols.spec.ProtocolSpec` (e.g. from
    :func:`param_grid`).  Either way the resulting specs are picklable and
    can be handed directly to the parallel engine
    (``repro.parallel.run_experiments``) or to the CLI's ``sweep``
    command; parameterised variants are named by their spec token, so two
    variants of the same algorithm occupy distinct cells.  ``adversary``
    attaches one fault model (:class:`~repro.dynamics.spec.AdversarySpec`)
    to every spec; use :func:`repro.dynamics.robustness_specs` for full
    (algorithm × adversary) grids.
    """
    from ..analysis.experiments import ExperimentSpec
    from ..analysis.runners import RUNNERS, runner_by_name
    from ..protocols.spec import ProtocolSpec

    specs: List["ExperimentSpec"] = []
    spellings: Dict[str, str] = {}
    for algorithm in algorithms:
        protocol: Optional[ProtocolSpec] = None
        if isinstance(algorithm, ProtocolSpec):
            protocol = algorithm
        elif ":" in algorithm or algorithm not in RUNNERS:
            # Parameterised spec strings, and bare names of protocols
            # registered after the fact (register_protocol): both resolve
            # through the protocol registry.  Only the built-in names take
            # the legacy-runner path, which keeps their pre-protocol
            # checkpoint task keys.
            protocol = ProtocolSpec.parse(algorithm)
        base = algorithm if protocol is None else protocol.token()
        name = base if adversary is None else f"{base}@{adversary.token()}"
        # Catch same-configuration collisions here, where the original
        # spellings are still in hand: "flooding:c=2" and "flooding:c=2.00"
        # coerce to one token, and "flooding" vs "flooding:c=2.0" differ
        # only in spelling out the default — either way the sweep would
        # measure one configuration twice (the engine's later unique-name
        # check would quote names the user never typed, or miss the
        # legacy-name case entirely).
        if protocol is not None:
            canonical = protocol.canonical()
        else:
            try:
                canonical = ProtocolSpec.create(algorithm).canonical()
            except ConfigurationError:
                # A runner registered only in the legacy RUNNERS dict (no
                # protocol-registry entry): its name is its configuration.
                canonical = algorithm
        spelling = str(algorithm)
        if canonical in spellings:
            raise ConfigurationError(
                f"algorithms {spellings[canonical]!r} and {spelling!r} are "
                f"the same configuration ({canonical})"
            )
        spellings[canonical] = spelling
        algorithm_source = (
            {"runner": runner_by_name(algorithm)}
            if protocol is None
            else {"protocol": protocol}
        )
        with warnings.catch_warnings():
            if protocol is None:
                # The built-in names deliberately take the legacy runner
                # path to keep their pre-protocol checkpoint task keys;
                # that internal choice must not surface the public
                # ``runner=`` deprecation to every sweep caller.
                warnings.simplefilter("ignore", DeprecationWarning)
            specs.append(
                ExperimentSpec(
                    name=name,
                    topologies=list(topologies),
                    seeds=tuple(seeds),
                    collect_profile=collect_profile,
                    adversary=adversary,
                    **algorithm_source,
                )
            )
    return specs


def param_grid(name: str, **axes: object) -> List["ProtocolSpec"]:
    """Expand one protocol's parameter grid into a list of spec variants.

    Every keyword is a parameter of protocol ``name``; list/tuple values
    are swept axes, scalars are pinned.  The cross-product is enumerated
    with axes in sorted parameter order (deterministic regardless of
    keyword order), each combination validated against the protocol's
    schema::

        param_grid("irrevocable", c=[1.5, 2.0, 3.0])
        # -> [irrevocable:c=1.5, irrevocable:c=2.0, irrevocable:c=3.0]
        param_grid("irrevocable", c=[2.0, 3.0], x_multiplier=1.5)
        # -> two variants, x_multiplier pinned on both

    Feed the result straight to :func:`sweep_specs` (or concatenate grids
    of several protocols) — a paper-style cost-vs-parameter curve is one
    sweep away.
    """
    from ..protocols.spec import ProtocolSpec

    items = sorted(axes.items())
    value_lists: List[List[object]] = [
        list(values) if isinstance(values, (list, tuple)) else [values]
        for _, values in items
    ]
    for (key, _), values in zip(items, value_lists):
        if not values:
            raise ConfigurationError(
                f"param_grid axis {key!r} for {name!r} must not be empty"
            )
    names = [key for key, _ in items]
    return [
        ProtocolSpec.create(name, **dict(zip(names, combo)))
        for combo in itertools.product(*value_lists)
    ]


def robustness_curves(
    name: str,
    topologies: Sequence[Topology],
    *,
    scenario: Union[str, Sequence[Optional["AdversarySpec"]]] = "lossy",
    seeds: Sequence[int] = (0, 1, 2),
    collect_profile: bool = False,
    **axes: object,
) -> List["ExperimentSpec"]:
    """Cross one protocol's parameter grid with an adversary ladder.

    The "retuned protocol under faults" grid in one call: every
    :func:`param_grid` variant of protocol ``name`` (keyword axes; a bare
    ``name`` with no axes sweeps the default configuration only) runs
    under every rung of ``scenario`` — a :data:`DYNAMIC_SCENARIOS` name
    or an explicit adversary ladder (``None`` entries are the unperturbed
    baseline).  The resulting specs shard, parallelise and checkpoint
    like any others, and their streamed runs fold directly into
    success/safety-vs-``p`` curves via
    :mod:`repro.analysis.robustness`::

        robustness_curves("irrevocable", tiny_suite(),
                          scenario="skewed", c=[1.5, 2.0, 3.0])
        # 3 protocol variants × 4 ladder rungs = 12 experiment specs
    """
    from ..dynamics.sweeps import robustness_specs

    algorithms: List[Algorithm] = (
        list(param_grid(name, **axes)) if axes else [name]
    )
    ladder = dynamic_scenario(scenario) if isinstance(scenario, str) else list(scenario)
    if not ladder:
        raise ConfigurationError(
            "robustness_curves needs a non-empty adversary ladder"
        )
    return robustness_specs(
        algorithms,
        topologies,
        ladder,
        seeds=seeds,
        collect_profile=collect_profile,
    )


# --------------------------------------------------------------------------- #
# dynamic (adversarial) scenario suites
# --------------------------------------------------------------------------- #


def lossy_scenario() -> List[Optional["AdversarySpec"]]:
    """Benign-to-harsh i.i.d. message loss, baseline first."""
    from ..dynamics.spec import AdversarySpec

    return [None] + [
        AdversarySpec.create("loss", p=p) for p in (0.01, 0.05, 0.1)
    ]


def laggy_scenario() -> List[Optional["AdversarySpec"]]:
    """Bounded message delay at increasing rates and bounds."""
    from ..dynamics.spec import AdversarySpec

    return [
        None,
        AdversarySpec.create("delay", p=0.1, max_delay=2),
        AdversarySpec.create("delay", p=0.3, max_delay=5),
    ]


def flaky_links_scenario() -> List[Optional["AdversarySpec"]]:
    """Link churn from occasional blips to sustained instability."""
    from ..dynamics.spec import AdversarySpec

    return [
        None,
        AdversarySpec.create("churn", p_down=0.02, p_up=0.5),
        AdversarySpec.create("churn", p_down=0.1, p_up=0.25),
    ]


def crashy_scenario() -> List[Optional["AdversarySpec"]]:
    """Crash-stop failures early in the execution.

    The horizon is short on purpose: crash rounds are uniform over
    ``1..horizon``, and a crash only matters if it lands before the
    protocol finishes — flooding completes in ``diameter + 2`` rounds, a
    handful on the small suites.
    """
    from ..dynamics.spec import AdversarySpec

    return [
        None,
        AdversarySpec.create("crash", p=0.1, horizon=3),
        AdversarySpec.create("crash", p=0.3, horizon=3),
    ]


def skewed_scenario() -> List[Optional["AdversarySpec"]]:
    """Persistent per-link round skew at increasing link coverage.

    The asynchrony ladder: a growing fraction of links runs consistently
    late (same lateness for the whole run — see
    :class:`~repro.dynamics.adversaries.AsynchronyAdversary`), which
    breaks round-synchrony of information spread in a way the i.i.d.
    bounded-delay model cannot express.
    """
    from ..dynamics.spec import AdversarySpec

    return [None] + [
        AdversarySpec.create("skew", p=p, max_skew=3) for p in (0.1, 0.3, 0.6)
    ]


def asynchronous_scenario() -> List[Optional["AdversarySpec"]]:
    """Bounded asynchrony in force: persistent skew plus i.i.d. delay and loss.

    Where :func:`skewed_scenario` isolates the per-link clock skew, this
    ladder composes it with jitter (i.i.d. bounded delay) and a little
    loss — the full "asynchronous network" stress the paper's synchrony
    assumption is measured against.
    """
    from ..dynamics.spec import AdversarySpec
    from ..dynamics.sweeps import composed_spec

    return [
        None,
        composed_spec(
            AdversarySpec.create("skew", p=0.2, max_skew=2),
            AdversarySpec.create("delay", p=0.1, max_delay=2),
        ),
        composed_spec(
            AdversarySpec.create("skew", p=0.4, max_skew=4),
            AdversarySpec.create("delay", p=0.2, max_delay=3),
            AdversarySpec.create("loss", p=0.02),
        ),
    ]


def stormy_scenario() -> List[Optional["AdversarySpec"]]:
    """Loss, delay and churn *together* in one run, dialled up jointly.

    The single-model ladders isolate one failure mode at a time; real
    deployments degrade on all of them at once.  Built on the composed
    adversary, so each rung perturbs every run with all three models,
    each drawing from its own seed-derived RNG stream.
    """
    from ..dynamics.spec import AdversarySpec
    from ..dynamics.sweeps import composed_spec

    return [
        None,
        composed_spec(
            AdversarySpec.create("loss", p=0.01),
            AdversarySpec.create("delay", p=0.05, max_delay=2),
        ),
        composed_spec(
            AdversarySpec.create("loss", p=0.05),
            AdversarySpec.create("delay", p=0.1, max_delay=3),
            AdversarySpec.create("churn", p_down=0.02, p_up=0.5),
        ),
    ]


#: Named adversary ladders for robustness sweeps.  Each scenario starts
#: with ``None`` (the paper's reliable execution model) so every sweep
#: carries its own calibration cells; feed one to
#: :func:`repro.dynamics.robustness_specs` together with a topology suite.
DYNAMIC_SCENARIOS: Dict[str, Callable[[], List[Optional["AdversarySpec"]]]] = {
    "lossy": lossy_scenario,
    "laggy": laggy_scenario,
    "skewed": skewed_scenario,
    "asynchronous": asynchronous_scenario,
    "flaky-links": flaky_links_scenario,
    "crashy": crashy_scenario,
    "stormy": stormy_scenario,
}


def dynamic_scenario(name: str) -> List[Optional["AdversarySpec"]]:
    """Look up a named dynamic scenario (a ladder of adversary specs)."""
    try:
        builder = DYNAMIC_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dynamic scenario {name!r}; available: "
            f"{sorted(DYNAMIC_SCENARIOS)}"
        ) from None
    return builder()


# --------------------------------------------------------------------------- #
# protocol (parameter-ladder) scenario suites
# --------------------------------------------------------------------------- #


def paper_constants_scenario() -> List["ProtocolSpec"]:
    """The paper's tunable constants dialled around their defaults.

    A ladder of ``irrevocable`` variants sweeping Theorem 1's phase-length
    constant ``c`` and the walk-count multiplier ``x_multiplier`` one at a
    time, default configuration first — the cells needed for the paper's
    cost-vs-constant curves in a single sweep.
    """
    from ..protocols.spec import ProtocolSpec

    return (
        [ProtocolSpec.create("irrevocable")]
        + param_grid("irrevocable", c=[1.5, 3.0])
        + param_grid("irrevocable", x_multiplier=[1.0, 3.0])
    )


#: Named protocol-parameter ladders.  Where :data:`DYNAMIC_SCENARIOS`
#: dials the execution model, these dial the protocols' own constants;
#: each builder returns the algorithm list of one sweep
#: (``repro-le sweep --scenario paper-constants``).
PROTOCOL_SCENARIOS: Dict[str, Callable[[], List["ProtocolSpec"]]] = {
    "paper-constants": paper_constants_scenario,
}


def protocol_scenario(name: str) -> List["ProtocolSpec"]:
    """Look up a named protocol scenario (a ladder of protocol variants)."""
    try:
        builder = PROTOCOL_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol scenario {name!r}; available: "
            f"{sorted(PROTOCOL_SCENARIOS)}"
        ) from None
    return builder()
