"""Named topology suites used by the benchmarks and examples."""

from .suites import (
    SUITES,
    mixed_suite,
    poorly_connected_suite,
    scaling_family,
    suite_by_name,
    sweep_specs,
    tiny_suite,
    well_connected_suite,
)

__all__ = [
    "SUITES",
    "suite_by_name",
    "sweep_specs",
    "well_connected_suite",
    "poorly_connected_suite",
    "mixed_suite",
    "scaling_family",
    "tiny_suite",
]
