"""Named topology suites used by the benchmarks and examples."""

from .suites import (
    DYNAMIC_SCENARIOS,
    PROTOCOL_SCENARIOS,
    SUITES,
    dynamic_scenario,
    mixed_suite,
    param_grid,
    poorly_connected_suite,
    protocol_scenario,
    robustness_curves,
    scaling_family,
    suite_by_name,
    sweep_specs,
    tiny_suite,
    well_connected_suite,
)

__all__ = [
    "DYNAMIC_SCENARIOS",
    "PROTOCOL_SCENARIOS",
    "SUITES",
    "dynamic_scenario",
    "param_grid",
    "protocol_scenario",
    "robustness_curves",
    "suite_by_name",
    "sweep_specs",
    "well_connected_suite",
    "poorly_connected_suite",
    "mixed_suite",
    "scaling_family",
    "tiny_suite",
]
