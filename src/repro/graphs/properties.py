"""Graph-expansion properties: conductance, isoperimetric number, Cheeger bounds.

The paper's bounds are stated in terms of the graph conductance ``Φ(G)``
(Section 2), the isoperimetric number ``i(G)`` (used by Theorem 3), the
mixing time and the diameter.  Exact computation of ``Φ`` and ``i(G)``
requires minimising over all vertex subsets — exponential in ``n`` — so the
library offers

* :func:`conductance_exact` / :func:`isoperimetric_number_exact`: brute
  force over all cuts, feasible for ``n <= ~20`` (used by unit tests and by
  the tiny graphs in the revocable-election experiments);
* :func:`conductance_sweep` / :func:`isoperimetric_number_sweep`: the
  classic spectral sweep over the Fiedler-vector ordering, which returns an
  upper bound that is within the Cheeger guarantee of the optimum and is
  what the benchmarks use for larger graphs;
* :func:`conductance` / :func:`isoperimetric_number`: dispatchers that pick
  exact or sweep based on ``n``.

Cheeger-style sanity relations (``Φ²/2 <= 1 - λ₂ <= 2Φ`` for the lazy
walk) are exposed for property-based tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from .spectral import lazy_walk_matrix, mixing_time, spectral_gap
from .topology import Topology

__all__ = [
    "cut_conductance",
    "cut_expansion",
    "conductance_exact",
    "conductance_sweep",
    "conductance",
    "isoperimetric_number_exact",
    "isoperimetric_number_sweep",
    "isoperimetric_number",
    "cheeger_bounds",
    "ExpansionProfile",
    "expansion_profile",
    "EXACT_CUT_LIMIT",
]

#: Largest ``n`` for which the dispatchers use exact (exponential) cut search.
EXACT_CUT_LIMIT = 18


def cut_conductance(topology: Topology, subset: Iterable[int]) -> float:
    """Conductance of a single cut ``(S, V \\ S)``.

    ``|∂S| / min(vol(S), vol(V \\ S))`` per the paper's definition.
    """
    inside = set(subset)
    if not inside or len(inside) >= topology.num_nodes:
        raise ConfigurationError("cut must be a proper non-empty subset")
    boundary = topology.edge_boundary(inside)
    vol_inside = topology.volume(inside)
    vol_outside = topology.volume() - vol_inside
    denominator = min(vol_inside, vol_outside)
    if denominator == 0:
        return math.inf
    return boundary / denominator


def cut_expansion(topology: Topology, subset: Iterable[int]) -> float:
    """Edge expansion of a single cut: ``|∂S| / |S|`` with ``|S| <= n/2``."""
    inside = set(subset)
    if not inside or len(inside) >= topology.num_nodes:
        raise ConfigurationError("cut must be a proper non-empty subset")
    if len(inside) > topology.num_nodes // 2:
        inside = set(range(topology.num_nodes)) - inside
    return topology.edge_boundary(inside) / len(inside)


def _proper_subsets(n: int) -> Iterable[Tuple[int, ...]]:
    """All subsets S with 1 <= |S| <= n // 2 (fixing node 0's side halves work)."""
    nodes = list(range(n))
    for size in range(1, n // 2 + 1):
        for subset in itertools.combinations(nodes, size):
            yield subset


def conductance_exact(topology: Topology) -> float:
    """Exact conductance by brute force (exponential; small graphs only)."""
    n = topology.num_nodes
    if n < 2:
        raise ConfigurationError("conductance undefined for a single node")
    best = math.inf
    for subset in _proper_subsets(n):
        best = min(best, cut_conductance(topology, subset))
    return best


def isoperimetric_number_exact(topology: Topology) -> float:
    """Exact isoperimetric number by brute force (small graphs only)."""
    n = topology.num_nodes
    if n < 2:
        raise ConfigurationError("isoperimetric number undefined for a single node")
    best = math.inf
    for subset in _proper_subsets(n):
        best = min(best, cut_expansion(topology, subset))
    return best


def _fiedler_order(topology: Topology) -> np.ndarray:
    """Node ordering by the Fiedler vector of the normalised Laplacian."""
    n = topology.num_nodes
    degrees = np.array(topology.degrees(), dtype=float)
    if np.any(degrees == 0):
        raise ConfigurationError("expansion undefined with isolated nodes")
    adjacency = np.zeros((n, n))
    for u, v in topology.edges():
        adjacency[u, v] = 1.0
        adjacency[v, u] = 1.0
    d_inv_sqrt = 1.0 / np.sqrt(degrees)
    normalized = np.eye(n) - (adjacency * d_inv_sqrt[:, np.newaxis]) * d_inv_sqrt[np.newaxis, :]
    eigenvalues, eigenvectors = np.linalg.eigh((normalized + normalized.T) / 2.0)
    fiedler = eigenvectors[:, 1] * d_inv_sqrt
    return np.argsort(fiedler)


def conductance_sweep(topology: Topology) -> float:
    """Sweep-cut upper bound on conductance along the Fiedler ordering."""
    n = topology.num_nodes
    if n < 2:
        raise ConfigurationError("conductance undefined for a single node")
    order = _fiedler_order(topology)
    best = math.inf
    prefix: Set[int] = set()
    for i in range(n - 1):
        prefix.add(int(order[i]))
        best = min(best, cut_conductance(topology, prefix))
    return best


def isoperimetric_number_sweep(topology: Topology) -> float:
    """Sweep-cut upper bound on the isoperimetric number."""
    n = topology.num_nodes
    if n < 2:
        raise ConfigurationError("isoperimetric number undefined for a single node")
    order = _fiedler_order(topology)
    best = math.inf
    prefix: Set[int] = set()
    for i in range(n - 1):
        prefix.add(int(order[i]))
        best = min(best, cut_expansion(topology, prefix))
    return best


def conductance(topology: Topology, *, exact: Optional[bool] = None) -> float:
    """Graph conductance ``Φ(G)``; exact for small graphs, sweep otherwise."""
    if exact is None:
        exact = topology.num_nodes <= EXACT_CUT_LIMIT
    return conductance_exact(topology) if exact else conductance_sweep(topology)


def isoperimetric_number(topology: Topology, *, exact: Optional[bool] = None) -> float:
    """Isoperimetric number ``i(G)``; exact for small graphs, sweep otherwise."""
    if exact is None:
        exact = topology.num_nodes <= EXACT_CUT_LIMIT
    return (
        isoperimetric_number_exact(topology)
        if exact
        else isoperimetric_number_sweep(topology)
    )


def cheeger_bounds(topology: Topology) -> Tuple[float, float, float]:
    """Return ``(Φ²/2, spectral gap, 2Φ)`` for the lazy walk.

    For the lazy random walk the Cheeger inequality reads
    ``Φ²/2 <= 1 - λ₂ <= 2Φ`` (the laziness halves the usual constants).
    Property-based tests assert this sandwich on generated graphs.
    """
    phi = conductance(topology)
    gap = spectral_gap(topology)
    return (phi * phi / 2.0, gap, 2.0 * phi)


@dataclass(frozen=True)
class ExpansionProfile:
    """All expansion-related quantities the benchmarks need for one graph."""

    name: str
    num_nodes: int
    num_edges: int
    diameter: int
    min_degree: int
    max_degree: int
    conductance: float
    isoperimetric_number: float
    spectral_gap: float
    mixing_time: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "diameter": self.diameter,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "conductance": self.conductance,
            "isoperimetric_number": self.isoperimetric_number,
            "spectral_gap": self.spectral_gap,
            "mixing_time": self.mixing_time,
        }


def expansion_profile(topology: Topology, *, exact_cuts: Optional[bool] = None) -> ExpansionProfile:
    """Compute the full expansion profile of ``topology``.

    This is what the experiment runner attaches to every measured data
    point, so that results can be grouped and fitted against Φ, i(G) and
    ``t_mix``.
    """
    return ExpansionProfile(
        name=topology.name,
        num_nodes=topology.num_nodes,
        num_edges=topology.num_edges,
        diameter=topology.diameter(),
        min_degree=topology.min_degree(),
        max_degree=topology.max_degree(),
        conductance=conductance(topology, exact=exact_cuts),
        isoperimetric_number=isoperimetric_number(topology, exact=exact_cuts),
        spectral_gap=spectral_gap(topology),
        mixing_time=mixing_time(topology),
    )
