"""Port-numbered anonymous network topologies.

The paper's model (Section 2) is a connected undirected graph whose nodes
have no identifiers but do have a local labelling of their incident links —
*port numbers* ``1..deg(v)``.  :class:`Topology` captures exactly that: it
stores, for every node, the mapping from local port numbers to (neighbour,
neighbour's port), and nothing that a protocol could use to break anonymity.

Node indices ``0..n-1`` exist only for the simulator's bookkeeping and for
analysis; protocol code never sees them.

Port assignment order is part of the model (the impossibility proof in
Section 5.1 quantifies over port mappings), so the constructor supports both
a deterministic canonical assignment (ports ordered by neighbour index) and
a randomized assignment driven by a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.errors import TopologyError
from ..core.rng import derive_seed

__all__ = ["Topology"]

Edge = Tuple[int, int]


class Topology:
    """A connected, undirected, port-numbered graph.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; nodes are indexed ``0..n-1``.
    edges:
        Iterable of undirected edges ``(u, v)`` with ``u != v``.  Parallel
        edges and self-loops are rejected.
    name:
        Optional human-readable name (used in reports and benchmarks).
    port_seed:
        If ``None``, ports are assigned canonically (sorted by neighbour
        index).  Otherwise each node's ports are a random permutation of
        its incident edges, derived from this seed.
    require_connected:
        The paper assumes connectivity; set to ``False`` only for tests
        that specifically exercise the validation.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge],
        *,
        name: str = "topology",
        port_seed: Optional[int] = None,
        require_connected: bool = True,
    ) -> None:
        if num_nodes <= 0:
            raise TopologyError(f"num_nodes must be positive, got {num_nodes}")
        self._n = int(num_nodes)
        self._name = name

        seen = set()
        edge_list: List[Edge] = []
        for u, v in edges:
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise TopologyError(f"edge ({u}, {v}) out of range for n={self._n}")
            if u == v:
                raise TopologyError(f"self-loop on node {u} is not allowed")
            key = (min(u, v), max(u, v))
            if key in seen:
                raise TopologyError(f"parallel edge ({u}, {v})")
            seen.add(key)
            edge_list.append(key)

        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_list))
        self._adjacency = self._adjacency_from_edges(self._n, self._edges)

        if require_connected and not self._is_connected():
            raise TopologyError(
                f"topology '{name}' with {self._n} nodes and "
                f"{len(self._edges)} edges is not connected"
            )

        self._build_ports(port_seed)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _is_connected(self) -> bool:
        if self._n == 1:
            return True
        visited = [False] * self._n
        stack = [0]
        visited[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if not visited[v]:
                    visited[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    @staticmethod
    def _adjacency_from_edges(
        num_nodes: int, edges: Iterable[Edge]
    ) -> Tuple[Tuple[int, ...], ...]:
        adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
        for u, v in edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        return tuple(tuple(sorted(neighbors)) for neighbors in adjacency)

    def _build_ports(self, port_seed: Optional[int]) -> None:
        # port_order[u] is the list of neighbours of u in port order:
        # port p of u leads to port_order[u][p - 1].
        if port_seed is None:
            port_order = [list(neighbors) for neighbors in self._adjacency]
        else:
            rng = random.Random(port_seed)
            port_order = []
            for neighbors in self._adjacency:
                order = list(neighbors)
                rng.shuffle(order)
                port_order.append(order)
        self._finalize_ports(port_order)

    def _finalize_ports(self, port_order: Iterable[Iterable[int]]) -> None:
        """Fix the port assignment and derive the lookup tables from it."""
        self._port_order: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(order) for order in port_order
        )
        # reverse map: port_of[u][v] -> port number at u leading to v
        self._port_of: Tuple[Dict[int, int], ...] = tuple(
            {v: p + 1 for p, v in enumerate(order)} for order in self._port_order
        )
        # flat endpoint table: endpoint_table()[u][p - 1] == endpoint(u, p).
        # Precomputed once so the simulator's delivery loop is a pair of
        # list indexings instead of a method call with validation.
        self._endpoint_table: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple((v, self._port_of[v][u]) for v in order)
            for u, order in enumerate(self._port_order)
        )

    @classmethod
    def from_networkx(
        cls,
        graph: "nx.Graph",
        *,
        name: Optional[str] = None,
        port_seed: Optional[int] = None,
    ) -> "Topology":
        """Build a topology from a :class:`networkx.Graph`.

        Node labels may be arbitrary hashables; they are relabelled to
        ``0..n-1`` in sorted-by-insertion order.
        """
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls(
            len(nodes),
            edges,
            name=name or getattr(graph, "name", None) or "from_networkx",
            port_seed=port_seed,
        )

    def with_port_seed(self, port_seed: Optional[int]) -> "Topology":
        """Return a copy of this topology with re-randomised port numbers."""
        return Topology(
            self._n,
            self._edges,
            name=self._name,
            port_seed=port_seed,
        )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adjacency[node])

    def degrees(self) -> List[int]:
        return [len(neighbors) for neighbors in self._adjacency]

    def max_degree(self) -> int:
        return max(self.degrees()) if self._n else 0

    def min_degree(self) -> int:
        return min(self.degrees()) if self._n else 0

    def volume(self, nodes: Optional[Iterable[int]] = None) -> int:
        """Sum of degrees over ``nodes`` (all nodes if ``None``)."""
        if nodes is None:
            return 2 * self.num_edges
        return sum(self.degree(u) for u in nodes)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self._check_node(node)
        return self._adjacency[node]

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return v in self._port_of[u]

    # ------------------------------------------------------------------ #
    # port-numbered view (what the simulator uses)
    # ------------------------------------------------------------------ #
    def endpoint(self, node: int, port: int) -> Tuple[int, int]:
        """Return ``(neighbour, neighbour_port)`` reached through ``port``."""
        self._check_node(node)
        if not (1 <= port <= self.degree(node)):
            raise TopologyError(
                f"node {node} has ports 1..{self.degree(node)}, got {port}"
            )
        return self._endpoint_table[node][port - 1]

    def endpoint_table(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """The full port map: ``table[u][p - 1] == endpoint(u, p)``.

        The table is precomputed at construction; hot loops (the simulator's
        delivery phase) index it directly instead of calling
        :meth:`endpoint` per message.
        """
        return self._endpoint_table

    def fingerprint(self) -> str:
        """A short, process-stable digest of the exact graph structure.

        Display names omit construction details (two
        ``random_regular(n=64,d=4)`` instances built from different graph
        seeds share a name), so anything that must identify a topology
        *instance* — profile caches, parallel-sweep checkpoint keys —
        hashes the node count, edge list and port assignment instead.
        Built on :func:`repro.core.rng.derive_seed`: no salted string
        hashing, so the digest is stable across processes, multiprocessing
        start methods and Python invocations.  Computed lazily and cached.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            digest = derive_seed(
                0,
                "topology-fingerprint",
                self._n,
                self._edges,
                self._port_order,
            )
            cached = f"{digest:016x}"
            self._fingerprint = cached
        return cached

    def neighbor_via(self, node: int, port: int) -> int:
        """Return only the neighbour reached through ``port``."""
        return self.endpoint(node, port)[0]

    def port_to(self, node: int, neighbor: int) -> int:
        """Return the port of ``node`` that leads to ``neighbor``."""
        self._check_node(node)
        self._check_node(neighbor)
        try:
            return self._port_of[node][neighbor]
        except KeyError:
            raise TopologyError(f"nodes {node} and {neighbor} are not adjacent") from None

    def port_order(self, node: int) -> Tuple[int, ...]:
        """Neighbours of ``node`` in port order (index 0 is port 1)."""
        self._check_node(node)
        return self._port_order[node]

    # ------------------------------------------------------------------ #
    # conversions / analysis helpers
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> "nx.Graph":
        graph = nx.Graph(name=self._name)
        graph.add_nodes_from(range(self._n))
        graph.add_edges_from(self._edges)
        return graph

    def adjacency_sets(self) -> List[frozenset]:
        return [frozenset(neighbors) for neighbors in self._adjacency]

    def edge_boundary(self, subset: Iterable[int]) -> int:
        """Number of edges with exactly one endpoint in ``subset`` (``|∂S|``)."""
        inside = set(subset)
        # repro: disable=REP103 — validation only: each element is checked
        # independently and the loop has no ordered effect
        for u in inside:
            self._check_node(u)
        count = 0
        for u, v in self._edges:
            if (u in inside) != (v in inside):
                count += 1
        return count

    def bfs_distances(self, source: int) -> List[int]:
        """Hop distances from ``source`` to every node (-1 if unreachable)."""
        self._check_node(source)
        dist = [-1] * self._n
        dist[source] = 0
        queue = [source]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for v in self._adjacency[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def diameter(self) -> int:
        """Exact diameter via BFS from every node (fine for simulated sizes)."""
        best = 0
        for source in range(self._n):
            dist = self.bfs_distances(source)
            farthest = max(dist)
            if farthest < 0:
                raise TopologyError("diameter undefined for a disconnected topology")
            best = max(best, farthest)
        return best

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise TopologyError(f"node index {node} out of range for n={self._n}")

    # ------------------------------------------------------------------ #
    # pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, object]:
        # Only the defining data travels (nodes, edges, port assignment);
        # the derived tables (_adjacency, _port_of, _endpoint_table) are
        # rebuilt on load.  This keeps the per-task payload small when the
        # parallel engine ships one topology per (topology, seed) run.
        return {
            "n": self._n,
            "name": self._name,
            "edges": self._edges,
            "port_order": self._port_order,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._n = state["n"]
        self._name = state["name"]
        self._edges = state["edges"]
        self._adjacency = self._adjacency_from_edges(self._n, self._edges)
        self._finalize_ports(state["port_order"])

    # ------------------------------------------------------------------ #
    # dunder conveniences
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(name={self._name!r}, n={self._n}, m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._n == other._n
            and self._edges == other._edges
            and self._port_order == other._port_order
        )

    def __hash__(self) -> int:
        return hash((self._n, self._edges))
