"""Effective-topology views of a port-numbered graph under link churn.

A churn adversary (:mod:`repro.dynamics.adversaries`) takes links up and
down round by round.  The underlying :class:`~repro.graphs.topology.Topology`
cannot change — port numbers ``1..deg(v)`` are fixed by the model and the
protocol nodes were built against them — so the *effective* network in a
round is the base topology minus the currently-down edges.

:class:`EffectiveTopologyView` is that subgraph as a cheap overlay: it
answers degree/neighbour/connectivity questions without copying the base
graph, and can materialise a real :class:`Topology` (with fresh canonical
ports) when a round's snapshot needs full analysis — e.g. feeding a
disconnection-era subgraph to :func:`repro.graphs.properties.expansion_profile`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..core.errors import TopologyError
from .topology import Edge, Topology

__all__ = ["EffectiveTopologyView", "normalize_edge"]


def normalize_edge(u: int, v: int) -> Edge:
    """Canonical undirected form of an edge, ``(min, max)``."""
    return (u, v) if u <= v else (v, u)


class EffectiveTopologyView:
    """The subgraph of ``base`` with ``down_edges`` removed.

    The view is immutable: churn produces one view per round (cheap — the
    base graph is shared, only the down-set is stored).  Edges not present
    in the base topology are rejected so a typo in an adversary schedule
    fails loudly instead of silently perturbing nothing.
    """

    def __init__(self, base: Topology, down_edges: Iterable[Edge] = ()) -> None:
        self.base = base
        down: Set[Edge] = set()
        for u, v in down_edges:
            edge = normalize_edge(u, v)
            if not base.has_edge(*edge):
                raise TopologyError(
                    f"down edge {edge} is not an edge of topology '{base.name}'"
                )
            down.add(edge)
        self.down_edges: FrozenSet[Edge] = frozenset(down)

    # ------------------------------------------------------------------ #
    # subgraph accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes

    @property
    def num_edges(self) -> int:
        """Edges currently up."""
        return self.base.num_edges - len(self.down_edges)

    def is_up(self, u: int, v: int) -> bool:
        """Whether the base edge ``(u, v)`` is currently up."""
        return (
            self.base.has_edge(u, v)
            and normalize_edge(u, v) not in self.down_edges
        )

    def edges(self) -> Iterator[Edge]:
        """The edges currently up, in the base topology's sorted order."""
        down = self.down_edges
        return (edge for edge in self.base.edges() if edge not in down)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Neighbours of ``node`` reachable over up links."""
        down = self.down_edges
        return tuple(
            v
            for v in self.base.neighbors(node)
            if normalize_edge(node, v) not in down
        )

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #
    def connected_components(self) -> List[List[int]]:
        """Connected components of the effective graph, sorted by first node."""
        n = self.base.num_nodes
        seen = [False] * n
        components: List[List[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            seen[start] = True
            component = [start]
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self.neighbors(u):
                    if not seen[v]:
                        seen[v] = True
                        component.append(v)
                        stack.append(v)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        # No shortcut for an empty down-set: the base topology may itself
        # be disconnected (Topology allows require_connected=False, and
        # as_topology() snapshots are built that way).
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def as_topology(self, *, name: str = "") -> Topology:
        """Materialise the effective subgraph as a real :class:`Topology`.

        The result gets fresh canonical port numbers (the base assignment
        has holes where down edges were), so it is an *analysis* artefact —
        expansion profiles, mixing times — not a drop-in for a running
        simulation.  Disconnected snapshots are allowed.
        """
        return Topology(
            self.base.num_nodes,
            list(self.edges()),
            name=name or f"{self.base.name}-effective",
            require_connected=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EffectiveTopologyView(base={self.base.name!r}, "
            f"down={len(self.down_edges)}/{self.base.num_edges})"
        )
