"""Token-level random-walk machinery and empirical walk statistics.

Algorithm 5 in the paper has candidates launch ``x`` independent *lazy*
random walks (stay put with probability 1/2, otherwise move to a uniformly
random neighbour).  This module provides:

* :func:`lazy_walk_step` / :func:`simulate_lazy_walk`: single-token walks on
  a :class:`~repro.graphs.topology.Topology`, used by tests and by the
  Gilbert-style baseline;
* :class:`WalkPopulation`: a vectorised multi-token walk (counts of tokens
  per node), used by the analysis layer to estimate hitting probabilities of
  broadcast territories (the quantity in Lemma 2);
* empirical estimators for hitting time and cover time used in tests to
  cross-check the spectral quantities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..core.errors import ConfigurationError
from .topology import Topology

__all__ = [
    "lazy_walk_step",
    "simulate_lazy_walk",
    "WalkPopulation",
    "estimate_hitting_probability",
    "empirical_hitting_time",
    "empirical_cover_time",
    "walk_distribution_after",
]


def lazy_walk_step(topology: Topology, node: int, rng: random.Random) -> int:
    """One step of the lazy random walk from ``node``."""
    if rng.random() < 0.5:
        return node
    neighbors = topology.neighbors(node)
    if not neighbors:
        return node
    return rng.choice(neighbors)


def simulate_lazy_walk(
    topology: Topology,
    start: int,
    steps: int,
    rng: random.Random,
) -> List[int]:
    """Trajectory (including the start) of a lazy walk of ``steps`` steps."""
    if steps < 0:
        raise ConfigurationError(f"steps must be non-negative, got {steps}")
    trajectory = [start]
    current = start
    for _ in range(steps):
        current = lazy_walk_step(topology, current, rng)
        trajectory.append(current)
    return trajectory


@dataclass
class WalkPopulation:
    """A population of indistinguishable lazy-walk tokens.

    Only the *count* of tokens at each node is tracked, which matches the
    CONGEST encoding in Algorithm 5 (per-port messages carry the walk ID and
    the number of token copies, not individual tokens).
    """

    topology: Topology
    counts: List[int]

    @classmethod
    def from_sources(cls, topology: Topology, sources: Dict[int, int]) -> "WalkPopulation":
        """Create a population with ``sources[node]`` tokens at each node."""
        counts = [0] * topology.num_nodes
        for node, count in sources.items():
            if count < 0:
                raise ConfigurationError(f"token count must be non-negative, got {count}")
            counts[node] += count
        return cls(topology=topology, counts=counts)

    @property
    def total_tokens(self) -> int:
        return sum(self.counts)

    def occupied_nodes(self) -> Set[int]:
        return {node for node, count in enumerate(self.counts) if count > 0}

    def step(self, rng: random.Random) -> None:
        """Advance every token by one lazy-walk step."""
        new_counts = [0] * self.topology.num_nodes
        for node, count in enumerate(self.counts):
            if count == 0:
                continue
            neighbors = self.topology.neighbors(node)
            for _ in range(count):
                if not neighbors or rng.random() < 0.5:
                    new_counts[node] += 1
                else:
                    new_counts[rng.choice(neighbors)] += 1
        self.counts = new_counts

    def run(self, steps: int, rng: random.Random, *, visited: Optional[Set[int]] = None) -> Set[int]:
        """Advance ``steps`` steps, returning the set of nodes ever occupied."""
        seen: Set[int] = set(self.occupied_nodes()) if visited is None else visited
        seen |= self.occupied_nodes()
        for _ in range(steps):
            self.step(rng)
            seen |= self.occupied_nodes()
        return seen


def walk_distribution_after(topology: Topology, start: int, steps: int) -> np.ndarray:
    """Exact distribution of a lazy walk after ``steps`` steps from ``start``."""
    from .spectral import lazy_walk_matrix  # local import to avoid cycle at module load

    n = topology.num_nodes
    distribution = np.zeros(n)
    distribution[start] = 1.0
    matrix = lazy_walk_matrix(topology)
    for _ in range(steps):
        distribution = distribution @ matrix
    return distribution


def estimate_hitting_probability(
    topology: Topology,
    sources: Sequence[int],
    targets: Iterable[int],
    *,
    walks_per_source: int,
    steps: int,
    rng: random.Random,
) -> float:
    """Empirical probability that at least one walk hits the target set.

    This is the quantity behind Lemma 2: with ``x = Θ̃(sqrt(n log n / (Φ
    t_mix)))`` walks of length ``Θ(t_mix log n)``, some walk hits every
    candidate's broadcast territory (of size ``Ω̃(x t_mix Φ)``) w.h.p.
    """
    target_set = set(targets)
    if not target_set:
        raise ConfigurationError("target set must be non-empty")
    population = WalkPopulation.from_sources(
        topology, {source: walks_per_source for source in sources}
    )
    if population.occupied_nodes() & target_set:
        return 1.0
    hits = 0
    trials = 1
    seen = population.run(steps, rng)
    if seen & target_set:
        hits += 1
    return hits / trials


def empirical_hitting_time(
    topology: Topology,
    start: int,
    target: int,
    rng: random.Random,
    *,
    repeats: int = 20,
    max_steps: Optional[int] = None,
) -> float:
    """Average number of lazy-walk steps to first reach ``target``."""
    if max_steps is None:
        max_steps = 64 * topology.num_nodes ** 2
    totals = []
    for _ in range(repeats):
        current = start
        for step in range(max_steps):
            if current == target:
                totals.append(step)
                break
            current = lazy_walk_step(topology, current, rng)
        else:
            totals.append(max_steps)
    return float(np.mean(totals))


def empirical_cover_time(
    topology: Topology,
    start: int,
    rng: random.Random,
    *,
    repeats: int = 5,
    max_steps: Optional[int] = None,
) -> float:
    """Average number of lazy-walk steps to visit every node."""
    n = topology.num_nodes
    if max_steps is None:
        max_steps = 128 * n ** 2 * max(1, int(np.log2(max(2, n))))
    totals = []
    for _ in range(repeats):
        visited = {start}
        current = start
        for step in range(1, max_steps + 1):
            current = lazy_walk_step(topology, current, rng)
            visited.add(current)
            if len(visited) == n:
                totals.append(step)
                break
        else:
            totals.append(max_steps)
    return float(np.mean(totals))
