"""Spectral analysis: random-walk matrices, mixing time, spectral gap.

The paper's algorithm for known network size takes the mixing time
``t_mix`` (and the conductance ``Φ``) as inputs.  The library computes
``t_mix`` exactly — following the paper's definition in Section 2 — by
iterating the lazy random-walk transition matrix until every starting
distribution is within ``1/(2n)`` of the stationary distribution in the
maximum norm.  For the graph sizes a simulation can handle (up to a few
thousand nodes) the exact computation is cheap; a spectral-gap estimate is
also provided for cross-checking and for the analysis layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.errors import ConfigurationError
from .topology import Topology

__all__ = [
    "lazy_walk_matrix",
    "simple_walk_matrix",
    "stationary_distribution",
    "mixing_time",
    "spectral_gap",
    "relaxation_time",
    "mixing_time_spectral_bound",
    "algebraic_connectivity",
    "SpectralProfile",
    "spectral_profile",
]


def simple_walk_matrix(topology: Topology) -> np.ndarray:
    """Transition matrix of the simple random walk (uniform over neighbours)."""
    n = topology.num_nodes
    matrix = np.zeros((n, n), dtype=float)
    for u in range(n):
        degree = topology.degree(u)
        if degree == 0:
            matrix[u, u] = 1.0
            continue
        for v in topology.neighbors(u):
            matrix[u, v] = 1.0 / degree
    return matrix


def lazy_walk_matrix(topology: Topology) -> np.ndarray:
    """Transition matrix of the lazy random walk used throughout the paper.

    The walk stays put with probability 1/2 and otherwise moves to a
    uniformly random neighbour — exactly the walk issued by the candidates
    in Algorithm 5.  Laziness guarantees aperiodicity, so the walk always
    converges to its stationary distribution.
    """
    n = topology.num_nodes
    return 0.5 * np.eye(n) + 0.5 * simple_walk_matrix(topology)


def stationary_distribution(topology: Topology) -> np.ndarray:
    """Stationary distribution of the (lazy) random walk: ``deg(v) / 2m``."""
    degrees = np.array(topology.degrees(), dtype=float)
    total = degrees.sum()
    if total == 0:
        raise ConfigurationError("stationary distribution undefined without edges")
    return degrees / total


def mixing_time(
    topology: Topology,
    *,
    matrix: Optional[np.ndarray] = None,
    max_steps: Optional[int] = None,
) -> int:
    """Exact mixing time per the paper's definition (Section 2).

    ``t_mix`` is the smallest ``t`` such that for *every* starting
    distribution ``π₀`` the walk's distribution after ``t`` steps is within
    ``1/(2n)`` of the stationary distribution in the maximum norm.  Because
    the worst starting distribution is a point mass, it suffices to check
    the rows of ``P^t``.

    For the default lazy walk the computation diagonalises the (symmetrised)
    transition matrix once and then binary-searches ``t`` — cheap even for
    slow-mixing graphs like large cycles.  A caller-supplied ``matrix``
    falls back to straightforward power iteration.
    """
    n = topology.num_nodes
    if n == 1:
        return 0
    pi = stationary_distribution(topology)
    threshold = 1.0 / (2.0 * n)
    if max_steps is None:
        # t_mix <= O(n^2 log n) for lazy walks on connected graphs (the
        # cycle is essentially the worst case); a generous cap keeps the
        # search finite even for pathological inputs.
        max_steps = max(16, 64 * n * n * max(1, int(math.log2(n)) + 1))

    if matrix is not None:
        return _mixing_time_iterative(
            np.asarray(matrix, dtype=float), pi, threshold, max_steps, topology.name
        )

    degrees = np.array(topology.degrees(), dtype=float)
    d_sqrt = np.sqrt(degrees)
    P = lazy_walk_matrix(topology)
    symmetric = (P * d_sqrt[:, np.newaxis]) / d_sqrt[np.newaxis, :]
    eigenvalues, eigenvectors = np.linalg.eigh((symmetric + symmetric.T) / 2.0)
    # The lazy walk has non-negative spectrum; clip numerical noise.
    eigenvalues = np.clip(eigenvalues, 0.0, 1.0)

    def deviation(t: int) -> float:
        powered = (eigenvectors * eigenvalues ** t) @ eigenvectors.T
        walk_t = powered / d_sqrt[:, np.newaxis] * d_sqrt[np.newaxis, :]
        return float(np.abs(walk_t - pi[np.newaxis, :]).max())

    if deviation(1) <= threshold:
        return 1
    hi = 1
    while deviation(hi) > threshold:
        hi *= 2
        if hi > max_steps:
            raise ConfigurationError(
                f"mixing time exceeded the cap of {max_steps} steps for "
                f"{topology.name}; the graph may be disconnected"
            )
    lo = hi // 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if deviation(mid) <= threshold:
            hi = mid
        else:
            lo = mid
    return hi


def _mixing_time_iterative(
    P: np.ndarray,
    pi: np.ndarray,
    threshold: float,
    max_steps: int,
    name: str,
) -> int:
    power = np.eye(P.shape[0])
    for t in range(1, max_steps + 1):
        power = power @ P
        if np.abs(power - pi[np.newaxis, :]).max() <= threshold:
            return t
    raise ConfigurationError(
        f"mixing time exceeded the cap of {max_steps} steps for {name}; "
        f"the graph may be disconnected"
    )


def spectral_gap(topology: Topology, *, matrix: Optional[np.ndarray] = None) -> float:
    """Spectral gap ``1 - λ₂`` of the lazy random walk.

    The lazy walk's transition matrix is similar to a symmetric matrix, so
    its eigenvalues are real; laziness makes them non-negative, hence the
    second-largest eigenvalue governs convergence.
    """
    P = lazy_walk_matrix(topology) if matrix is None else np.asarray(matrix, dtype=float)
    degrees = np.array(topology.degrees(), dtype=float)
    if np.any(degrees == 0):
        raise ConfigurationError("spectral gap undefined with isolated nodes")
    # Symmetrise: D^{1/2} P D^{-1/2} has the same spectrum as P.
    d_sqrt = np.sqrt(degrees)
    symmetric = (P * d_sqrt[:, np.newaxis]) / d_sqrt[np.newaxis, :]
    eigenvalues = np.linalg.eigvalsh((symmetric + symmetric.T) / 2.0)
    eigenvalues = np.sort(eigenvalues)[::-1]
    lambda2 = float(eigenvalues[1]) if len(eigenvalues) > 1 else 0.0
    return max(0.0, 1.0 - lambda2)


def relaxation_time(topology: Topology) -> float:
    """Relaxation time ``1 / (1 - λ₂)`` of the lazy walk."""
    gap = spectral_gap(topology)
    if gap <= 0:
        raise ConfigurationError(f"non-positive spectral gap for {topology.name}")
    return 1.0 / gap


def algebraic_connectivity(topology: Topology) -> float:
    """Second-smallest eigenvalue of the (unnormalised) graph Laplacian.

    This is the quantity that governs the convergence rate of the uniform
    potential-diffusion process of Section 5.2: with per-neighbour share
    ``s`` the diffusion matrix is ``I - s·L`` and its spectral gap is
    ``s·λ₂(L)``.  The scaled parameter schedule for the revocable election
    uses it to size the diffusion phase without the enormous worst-case
    constants of the paper schedule.
    """
    n = topology.num_nodes
    if n < 2:
        raise ConfigurationError("algebraic connectivity undefined for a single node")
    laplacian = np.zeros((n, n))
    for u, v in topology.edges():
        laplacian[u, u] += 1.0
        laplacian[v, v] += 1.0
        laplacian[u, v] -= 1.0
        laplacian[v, u] -= 1.0
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))
    return float(max(0.0, eigenvalues[1]))


def mixing_time_spectral_bound(topology: Topology) -> float:
    """Standard upper bound ``t_mix <= t_rel * ln(2n / π_min)``.

    Cheap to compute and useful as a sanity check against the exact value
    (``mixing_time``) in tests and in the analysis layer.
    """
    n = topology.num_nodes
    if n == 1:
        return 0.0
    pi = stationary_distribution(topology)
    t_rel = relaxation_time(topology)
    return t_rel * math.log(2.0 * n / float(pi.min()))


@dataclass(frozen=True)
class SpectralProfile:
    """Bundle of spectral quantities for one topology."""

    num_nodes: int
    num_edges: int
    spectral_gap: float
    relaxation_time: float
    mixing_time: int
    mixing_time_upper_bound: float

    def as_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "spectral_gap": self.spectral_gap,
            "relaxation_time": self.relaxation_time,
            "mixing_time": self.mixing_time,
            "mixing_time_upper_bound": self.mixing_time_upper_bound,
        }


def spectral_profile(topology: Topology) -> SpectralProfile:
    """Compute all spectral quantities for ``topology`` in one pass."""
    gap = spectral_gap(topology)
    t_rel = 1.0 / gap if gap > 0 else math.inf
    return SpectralProfile(
        num_nodes=topology.num_nodes,
        num_edges=topology.num_edges,
        spectral_gap=gap,
        relaxation_time=t_rel,
        mixing_time=mixing_time(topology),
        mixing_time_upper_bound=mixing_time_spectral_bound(topology),
    )
