"""Topology generators.

The complexity bounds in the paper are parameterised by the network's
conductance ``Φ``, isoperimetric number ``i(G)`` and mixing time ``t_mix``.
To sweep those regimes the benchmarks need graph families at both extremes
and in between:

* well connected / fast mixing: complete graphs, hypercubes, random regular
  graphs ("expanders"), Erdős–Rényi above the connectivity threshold;
* poorly connected / slow mixing: cycles, paths, barbells, lollipops,
  dumbbells (two cliques joined by a long path);
* intermediate: 2-D grids and tori, balanced binary trees, stars.

Every generator returns a :class:`~repro.graphs.topology.Topology` whose
name records the family and parameters, which the reporting layer uses as
row labels.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import List, Optional, Tuple

import networkx as nx

from ..core.errors import TopologyError
from .topology import Topology

__all__ = [
    "cycle",
    "path",
    "complete",
    "star",
    "grid_2d",
    "torus_2d",
    "hypercube",
    "binary_tree",
    "random_regular",
    "erdos_renyi",
    "barbell",
    "lollipop",
    "dumbbell",
    "two_cliques_bridge",
    "by_name",
    "GENERATORS",
]

Edge = Tuple[int, int]


def cycle(n: int, *, port_seed: Optional[int] = None) -> Topology:
    """The cycle ``C_n`` — the slow-mixing workhorse of Section 5.1."""
    if n < 3:
        raise TopologyError(f"a cycle needs at least 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n, edges, name=f"cycle(n={n})", port_seed=port_seed)


def path(n: int, *, port_seed: Optional[int] = None) -> Topology:
    """The path ``P_n``."""
    if n < 2:
        raise TopologyError(f"a path needs at least 2 nodes, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Topology(n, edges, name=f"path(n={n})", port_seed=port_seed)


def complete(n: int, *, port_seed: Optional[int] = None) -> Topology:
    """The complete graph ``K_n`` — conductance Θ(1), mixing time O(1)."""
    if n < 2:
        raise TopologyError(f"a complete graph needs at least 2 nodes, got {n}")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Topology(n, edges, name=f"complete(n={n})", port_seed=port_seed)


def star(n: int, *, port_seed: Optional[int] = None) -> Topology:
    """A star with one hub and ``n - 1`` leaves."""
    if n < 2:
        raise TopologyError(f"a star needs at least 2 nodes, got {n}")
    edges = [(0, i) for i in range(1, n)]
    return Topology(n, edges, name=f"star(n={n})", port_seed=port_seed)


def grid_2d(rows: int, cols: int, *, port_seed: Optional[int] = None) -> Topology:
    """A ``rows x cols`` 2-D grid (no wraparound)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid needs at least 2 nodes, got {rows}x{cols}")
    def index(r: int, c: int) -> int:
        return r * cols + c
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
    return Topology(
        rows * cols, edges, name=f"grid({rows}x{cols})", port_seed=port_seed
    )


def torus_2d(rows: int, cols: int, *, port_seed: Optional[int] = None) -> Topology:
    """A ``rows x cols`` 2-D torus (grid with wraparound)."""
    if rows < 3 or cols < 3:
        raise TopologyError(
            f"torus needs at least 3 rows and columns to avoid parallel edges, "
            f"got {rows}x{cols}"
        )
    def index(r: int, c: int) -> int:
        return r * cols + c
    edges = set()
    for r in range(rows):
        for c in range(cols):
            edges.add(tuple(sorted((index(r, c), index(r, (c + 1) % cols)))))
            edges.add(tuple(sorted((index(r, c), index((r + 1) % rows, c)))))
    return Topology(
        rows * cols, sorted(edges), name=f"torus({rows}x{cols})", port_seed=port_seed
    )


def hypercube(dimension: int, *, port_seed: Optional[int] = None) -> Topology:
    """The ``dimension``-dimensional hypercube on ``2^dimension`` nodes."""
    if dimension < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {dimension}")
    n = 1 << dimension
    edges = []
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u, v))
    return Topology(n, edges, name=f"hypercube(d={dimension})", port_seed=port_seed)


def binary_tree(depth: int, *, port_seed: Optional[int] = None) -> Topology:
    """A complete binary tree of the given depth (root has depth 0)."""
    if depth < 1:
        raise TopologyError(f"binary tree depth must be >= 1, got {depth}")
    n = (1 << (depth + 1)) - 1
    edges = []
    for child in range(1, n):
        parent = (child - 1) // 2
        edges.append((parent, child))
    return Topology(n, edges, name=f"binary_tree(depth={depth})", port_seed=port_seed)


def random_regular(
    n: int,
    degree: int,
    *,
    seed: Optional[int] = None,
    port_seed: Optional[int] = None,
    max_attempts: int = 200,
) -> Topology:
    """A random ``degree``-regular graph on ``n`` nodes (simple, connected).

    Random regular graphs with ``degree >= 3`` are expanders with high
    probability, which makes them the standard stand-in for the
    "well-connected" graphs where the paper's Theorem 1 shines.  Uses the
    pairing model with rejection; retries until a simple connected graph is
    produced.
    """
    if degree < 2 or degree >= n:
        raise TopologyError(f"need 2 <= degree < n, got degree={degree}, n={n}")
    if (n * degree) % 2 != 0:
        raise TopologyError(f"n*degree must be even, got n={n}, degree={degree}")
    rng = random.Random(seed)
    for attempt in range(max_attempts):
        graph = nx.random_regular_graph(degree, n, seed=rng.randrange(2 ** 31))
        if not nx.is_connected(graph):
            continue
        return Topology(
            n,
            [(int(u), int(v)) for u, v in graph.edges()],
            name=f"random_regular(n={n},d={degree})",
            port_seed=port_seed,
        )
    raise TopologyError(
        f"failed to generate a connected simple {degree}-regular graph on "
        f"{n} nodes in {max_attempts} attempts"
    )


def erdos_renyi(
    n: int,
    probability: Optional[float] = None,
    *,
    seed: Optional[int] = None,
    port_seed: Optional[int] = None,
    max_attempts: int = 200,
) -> Topology:
    """A connected Erdős–Rényi graph ``G(n, p)``.

    The default probability ``2 ln(n) / n`` is safely above the
    connectivity threshold, so rejection sampling terminates quickly.
    """
    if n < 2:
        raise TopologyError(f"need at least 2 nodes, got {n}")
    if probability is None:
        probability = min(1.0, 2.0 * math.log(max(2, n)) / n)
    if not (0.0 < probability <= 1.0):
        raise TopologyError(f"probability must be in (0, 1], got {probability}")
    rng = random.Random(seed)
    for _ in range(max_attempts):
        edges = [
            (u, v)
            for u, v in itertools.combinations(range(n), 2)
            if rng.random() < probability
        ]
        try:
            return Topology(
                n,
                edges,
                name=f"erdos_renyi(n={n},p={probability:.3f})",
                port_seed=port_seed,
            )
        except TopologyError:
            continue
    raise TopologyError(
        f"failed to generate a connected G({n}, {probability}) in "
        f"{max_attempts} attempts"
    )


def barbell(clique_size: int, *, port_seed: Optional[int] = None) -> Topology:
    """Two cliques of ``clique_size`` nodes joined by a single edge.

    Conductance Θ(1/n²) — the classic bad case for diffusion and random
    walks.
    """
    if clique_size < 3:
        raise TopologyError(f"clique_size must be >= 3, got {clique_size}")
    n = 2 * clique_size
    edges = []
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((i, j))
            edges.append((clique_size + i, clique_size + j))
    edges.append((clique_size - 1, clique_size))
    return Topology(n, edges, name=f"barbell(k={clique_size})", port_seed=port_seed)


def lollipop(clique_size: int, tail_length: int, *, port_seed: Optional[int] = None) -> Topology:
    """A clique with a path ("tail") attached to one of its nodes."""
    if clique_size < 3:
        raise TopologyError(f"clique_size must be >= 3, got {clique_size}")
    if tail_length < 1:
        raise TopologyError(f"tail_length must be >= 1, got {tail_length}")
    n = clique_size + tail_length
    edges = [
        (i, j) for i in range(clique_size) for j in range(i + 1, clique_size)
    ]
    previous = clique_size - 1
    for offset in range(tail_length):
        node = clique_size + offset
        edges.append((previous, node))
        previous = node
    return Topology(
        n,
        edges,
        name=f"lollipop(k={clique_size},tail={tail_length})",
        port_seed=port_seed,
    )


def dumbbell(clique_size: int, bridge_length: int, *, port_seed: Optional[int] = None) -> Topology:
    """Two cliques joined by a path of ``bridge_length`` intermediate nodes."""
    if clique_size < 3:
        raise TopologyError(f"clique_size must be >= 3, got {clique_size}")
    if bridge_length < 1:
        raise TopologyError(f"bridge_length must be >= 1, got {bridge_length}")
    n = 2 * clique_size + bridge_length
    edges = []
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((i, j))
            edges.append((clique_size + bridge_length + i, clique_size + bridge_length + j))
    previous = clique_size - 1
    for offset in range(bridge_length):
        node = clique_size + offset
        edges.append((previous, node))
        previous = node
    edges.append((previous, clique_size + bridge_length))
    return Topology(
        n,
        edges,
        name=f"dumbbell(k={clique_size},bridge={bridge_length})",
        port_seed=port_seed,
    )


def two_cliques_bridge(clique_size: int, *, port_seed: Optional[int] = None) -> Topology:
    """Alias of :func:`barbell`, kept for readability in experiment specs."""
    return barbell(clique_size, port_seed=port_seed)


#: Registry used by :func:`by_name` and the workload suites.
GENERATORS = {
    "cycle": cycle,
    "path": path,
    "complete": complete,
    "star": star,
    "grid_2d": grid_2d,
    "torus_2d": torus_2d,
    "hypercube": hypercube,
    "binary_tree": binary_tree,
    "random_regular": random_regular,
    "erdos_renyi": erdos_renyi,
    "barbell": barbell,
    "lollipop": lollipop,
    "dumbbell": dumbbell,
}


def by_name(name: str, /, *args, **kwargs) -> Topology:
    """Look up a generator by name and call it with the given arguments."""
    try:
        generator = GENERATORS[name]
    except KeyError:
        raise TopologyError(
            f"unknown generator {name!r}; available: {sorted(GENERATORS)}"
        ) from None
    return generator(*args, **kwargs)
