"""Declarative, picklable adversary specifications.

An :class:`AdversarySpec` is the value that travels through experiment
grids: a model name from :data:`ADVERSARIES` plus a frozen parameter
mapping.  It is hashable and picklable (so the parallel engine can ship it
to workers inside an :class:`~repro.analysis.experiments.ExperimentSpec`)
and renders a stable :meth:`~AdversarySpec.token` that becomes part of
checkpoint task keys — a sweep resumed with a different adversary re-runs
instead of replaying results measured under different dynamics.

Instantiation (:func:`make_adversary`) binds a spec to a concrete run
seed; the resulting adversary perturbs that run deterministically (see
:mod:`repro.core.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Type

from ..core.errors import ConfigurationError
from ..core.faults import FaultAdversary
from .adversaries import (
    AsynchronyAdversary,
    ComposedAdversary,
    CrashStopAdversary,
    LinkChurnAdversary,
    MessageDelayAdversary,
    MessageLossAdversary,
)

__all__ = [
    "ADVERSARIES",
    "AdversarySpec",
    "adversary_factory",
    "make_adversary",
    "parse_adversary_params",
    "spec_from_cli",
]

#: CLI/registry name -> adversary class.  Constructor keyword names double
#: as the ``--adversary-param`` keys.  ``composed`` additionally takes a
#: ``models`` parameter ("loss+delay") plus dotted per-model parameters
#: ("loss.p"), spelled ``--adversary composed:loss+delay`` on the CLI.
ADVERSARIES: Dict[str, Type[FaultAdversary]] = {
    MessageLossAdversary.name: MessageLossAdversary,
    MessageDelayAdversary.name: MessageDelayAdversary,
    AsynchronyAdversary.name: AsynchronyAdversary,
    LinkChurnAdversary.name: LinkChurnAdversary,
    CrashStopAdversary.name: CrashStopAdversary,
    ComposedAdversary.name: ComposedAdversary,
}


@dataclass(frozen=True)
class AdversarySpec:
    """A named adversary model plus its parameters, grid-ready.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    that equal specs hash equal and the :meth:`token` is stable no matter
    the keyword order the spec was built with.
    """

    name: str
    params: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def create(cls, name: str, **params: float) -> "AdversarySpec":
        """Build a validated spec: unknown models and bad params fail now.

        Validation instantiates the model once (with a throwaway seed), so
        a typo'd parameter name or an out-of-range probability surfaces at
        grid-construction time, not inside a worker process mid-sweep.
        """
        if name not in ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary {name!r}; available: {sorted(ADVERSARIES)}"
            )
        spec = cls(name=name, params=tuple(sorted(params.items())))
        make_adversary(spec, seed=0)
        return spec

    def token(self) -> str:
        """Stable identity string, e.g. ``"loss(p=0.05)"`` (used in task keys)."""
        inner = ",".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name}({inner})"

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}


def make_adversary(spec: AdversarySpec, seed: Optional[int]) -> FaultAdversary:
    """Instantiate ``spec`` bound to one run seed."""
    try:
        model = ADVERSARIES[spec.name]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary {spec.name!r}; available: {sorted(ADVERSARIES)}"
        ) from None
    try:
        return model(seed=seed, **dict(spec.params))
    except TypeError as error:
        raise ConfigurationError(
            f"bad parameters for adversary {spec.name!r}: {error}"
        ) from error


def adversary_factory(
    spec: AdversarySpec, seed: Optional[int]
) -> Callable[[], FaultAdversary]:
    """A zero-arg factory for :func:`repro.core.faults.fault_scope`."""
    return lambda: make_adversary(spec, seed)


def spec_from_cli(name: str, params: Dict[str, float]) -> AdversarySpec:
    """Build a validated spec from the CLI spelling of ``--adversary``.

    Plain model names pass through (``loss``); the composed model takes
    its part list after a colon — ``composed:loss+delay`` with dotted
    ``--adversary-param`` entries like ``loss.p=0.05``.
    """
    base, sep, models = name.partition(":")
    if sep:
        if base != ComposedAdversary.name:
            raise ConfigurationError(
                f"only the composed adversary takes a ':<models>' suffix, "
                f"got {name!r}; did you mean composed:{models or base}?"
            )
        params = {**params, "models": models}
    return AdversarySpec.create(base, **params)


def parse_adversary_params(items: Sequence[str]) -> Dict[str, float]:
    """Parse ``k=v`` strings (CLI ``--adversary-param``) into numbers.

    Values parse as int when possible, float otherwise; anything else is a
    configuration error with the offending item named.
    """
    parsed: Dict[str, float] = {}
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"bad --adversary-param {item!r}; expected key=value"
            )
        try:
            value: float = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"bad --adversary-param {item!r}; value must be numeric"
                ) from None
        parsed[key] = value
    return parsed
