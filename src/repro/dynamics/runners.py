"""Adversarial election runners: fault injection around protocol entry points.

The experiment layer drives algorithms through ``runner(topology, seed)``
callables.  :class:`AdversarialRunner` wraps such a runner so that every
simulator the protocol builds during the run — the paper's protocols build
several, one per phase — is constructed inside a
:func:`repro.core.faults.fault_scope` and therefore gets a fresh adversary
instance bound to the run seed.

Instances are picklable (a dataclass of a module-level base runner and a
frozen :class:`~repro.dynamics.spec.AdversarySpec`), so adversarial specs
flow through the parallel engine's worker pool unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.faults import fault_scope
from ..election.base import LeaderElectionResult
from ..graphs.topology import Topology
from .spec import AdversarySpec, adversary_factory

__all__ = ["AdversarialRunner", "run_with_adversary"]

#: Same shape as :data:`repro.analysis.experiments.ElectionRunner` (typed
#: structurally here so ``dynamics`` stays below ``analysis`` in the layering).
Runner = Callable[[Topology, int], LeaderElectionResult]


@dataclass(frozen=True)
class AdversarialRunner:
    """``base`` executed under the fault model described by ``spec``."""

    base: Runner
    spec: AdversarySpec

    def __call__(self, topology: Topology, seed: int) -> LeaderElectionResult:
        return run_with_adversary(self.base, topology, seed, self.spec)


def run_with_adversary(
    runner: Runner,
    topology: Topology,
    seed: int,
    spec: AdversarySpec,
) -> LeaderElectionResult:
    """Run one election under ``spec``'s fault model.

    The adversary is recorded in the result's ``parameters`` (and hence in
    checkpoint records and reports), so a stored run always says which
    execution model produced it.
    """
    with fault_scope(adversary_factory(spec, seed)):
        result = runner(topology, seed)
    result.parameters = {**result.parameters, "adversary": spec.as_dict()}
    return result
