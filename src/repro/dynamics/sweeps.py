"""Robustness sweeps: experiment grids with an adversary axis.

A robustness sweep asks how an election algorithm's safety, success rate
and cost degrade as an execution-model perturbation is dialled up.  The
helpers here expand (algorithm × adversary) grids into the same
:class:`~repro.analysis.experiments.ExperimentSpec` objects the rest of
the experiment machinery consumes, so robustness grids shard, parallelise
and checkpoint exactly like static ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Union

from ..graphs.topology import Topology
from .spec import AdversarySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.experiments import ExperimentSpec
    from ..protocols.spec import ProtocolSpec

__all__ = ["adversary_grid", "composed_spec", "robustness_specs"]


def adversary_grid(
    name: str, param: str, values: Iterable[float], **fixed: float
) -> List[AdversarySpec]:
    """One spec per value of a single dialled parameter.

    ``adversary_grid("loss", "p", [0.01, 0.05, 0.1])`` is the x-axis of a
    classic robustness curve; ``fixed`` pins the model's other parameters.
    """
    return [
        AdversarySpec.create(name, **{**fixed, param: value}) for value in values
    ]


def composed_spec(*parts: AdversarySpec) -> AdversarySpec:
    """Compose several adversary specs into one ``composed`` model spec.

    ``composed_spec(AdversarySpec.create("loss", p=0.05),
    AdversarySpec.create("delay", max_delay=3))`` perturbs each run with
    loss *and* delay simultaneously, every part drawing from its own
    seed-derived RNG stream (see
    :class:`~repro.dynamics.adversaries.ComposedAdversary`).  The result
    is an ordinary grid value: it shards, parallelises and checkpoints
    like any other adversary, with its own stable token.
    """
    from ..core.errors import ConfigurationError

    if not parts:
        raise ConfigurationError("composed_spec needs at least one adversary spec")
    params: dict = {"models": "+".join(part.name for part in parts)}
    for part in parts:
        for key, value in part.params:
            params[f"{part.name}.{key}"] = value
    return AdversarySpec.create("composed", **params)


def robustness_specs(
    algorithms: Sequence[Union[str, "ProtocolSpec"]],
    topologies: Sequence[Topology],
    adversaries: Sequence[Optional[AdversarySpec]],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    collect_profile: bool = False,
) -> List["ExperimentSpec"]:
    """Expand an (algorithm × adversary) grid into experiment specs.

    ``algorithms`` entries are anything :func:`repro.workloads.suites.sweep_specs`
    accepts — plain runner names, parameterised protocol spec strings
    ("irrevocable:c=3"), or :class:`~repro.protocols.spec.ProtocolSpec`
    objects — so robustness curves compose with protocol parameter grids
    (how does a *retuned* protocol degrade under faults?).

    ``None`` in ``adversaries`` denotes the unperturbed baseline, so a
    grid usually starts with it: the baseline cells calibrate what the
    fault models cost.  Construction and naming delegate to
    :func:`repro.workloads.suites.sweep_specs` — spec names (and through
    them checkpoint task keys) are ``"<algorithm>@<adversary token>"``,
    plain ``"<algorithm>"`` for the baseline, with a single source of
    truth for the format.
    """
    from ..workloads.suites import sweep_specs

    specs: List["ExperimentSpec"] = []
    for adversary in adversaries:
        specs.extend(
            sweep_specs(
                algorithms,
                topologies,
                seeds=seeds,
                collect_profile=collect_profile,
                adversary=adversary,
            )
        )
    return specs
