"""Adversarial network dynamics: fault injection, churn, robustness sweeps.

The paper assumes a static, reliable, round-synchronous network; its
central quantities — mixing time, conductance, the isoperimetric number —
are exactly what degrades when that assumption slips.  ``repro.dynamics``
turns the repo from a reproduction of one execution model into a
robustness-analysis system over a family of them:

* :mod:`~repro.dynamics.adversaries` — concrete fault models (message
  loss, bounded delay, link churn, crash-stop), all deterministic
  functions of the run seed;
* :mod:`~repro.dynamics.spec` — picklable :class:`AdversarySpec` grid
  values plus the :data:`ADVERSARIES` registry behind
  ``repro-le sweep --adversary``;
* :mod:`~repro.dynamics.runners` — :class:`AdversarialRunner`, wrapping
  any election runner in a fault scope;
* :mod:`~repro.dynamics.sweeps` — (algorithm × adversary) robustness
  grids as ordinary experiment specs.

The simulator-side hook lives in :mod:`repro.core.faults`; dropped and
delayed messages surface as first-class
:class:`~repro.core.metrics.Metrics` counters and as trace events, and
adversarial runs flow through the parallel engine and its checkpoints
bit-identically to serial execution (``tests/test_dynamics.py``).
"""

from .adversaries import (
    AsynchronyAdversary,
    ComposedAdversary,
    CrashStopAdversary,
    LinkChurnAdversary,
    MessageDelayAdversary,
    MessageLossAdversary,
    SeededAdversary,
)
from .runners import AdversarialRunner, run_with_adversary
from .spec import (
    ADVERSARIES,
    AdversarySpec,
    adversary_factory,
    make_adversary,
    parse_adversary_params,
    spec_from_cli,
)
from .sweeps import adversary_grid, composed_spec, robustness_specs

__all__ = [
    "ADVERSARIES",
    "AdversarySpec",
    "AdversarialRunner",
    "AsynchronyAdversary",
    "ComposedAdversary",
    "CrashStopAdversary",
    "LinkChurnAdversary",
    "MessageDelayAdversary",
    "MessageLossAdversary",
    "SeededAdversary",
    "adversary_factory",
    "adversary_grid",
    "composed_spec",
    "make_adversary",
    "parse_adversary_params",
    "robustness_specs",
    "run_with_adversary",
    "spec_from_cli",
]
