"""Concrete fault-adversary models.

Four perturbations of the paper's reliable round-synchronous delivery
step, all deterministic functions of the run seed they are constructed
with (every random draw comes from a private RNG derived via
:func:`repro.core.rng.derive_seed`, so a run perturbs identically in any
process, worker count, or multiprocessing start method):

* :class:`MessageLossAdversary` — i.i.d. per-message loss;
* :class:`MessageDelayAdversary` — i.i.d. per-message bounded delay;
* :class:`AsynchronyAdversary` — persistent per-link round skew (each
  link draws a fixed lateness once; every message over it arrives that
  many rounds late);
* :class:`LinkChurnAdversary` — per-link up/down Markov churn with an
  effective-topology connectivity account;
* :class:`CrashStopAdversary` — seeded crash-stop node failures;
* :class:`ComposedAdversary` — several of the above in one run, each
  drawing from its own seed-derived RNG stream.

The models deliberately stress the quantities the paper's analysis leans
on: loss and churn thin the communication graph (conductance and the
isoperimetric number drop, mixing slows), delay breaks round-synchrony of
information spread, and crash-stop removes candidates outright.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set

from ..core.errors import ConfigurationError
from ..core.faults import DELIVER, DROP, FaultAdversary
from ..core.messages import Message
from ..core.metrics import MetricsCollector
from ..core.rng import derive_seed
from ..core.tracing import TraceRecorder
from ..graphs.dynamic import EffectiveTopologyView, normalize_edge
from ..graphs.topology import Topology

__all__ = [
    "SeededAdversary",
    "MessageLossAdversary",
    "MessageDelayAdversary",
    "AsynchronyAdversary",
    "LinkChurnAdversary",
    "CrashStopAdversary",
    "ComposedAdversary",
]


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


class SeededAdversary(FaultAdversary):
    """Base class for adversaries whose schedule derives from the run seed.

    The RNG is (re)derived at :meth:`attach` time from ``(seed, "dynamics",
    stream label, topology fingerprint)``, so each simulator built during
    one run — phase-structured protocols build several — perturbs its
    execution from the same deterministic stream, independent of process
    or scheduling.  The topology fingerprint is part of the derivation so
    that a sweep reusing one seed across many topologies draws an
    independent fault stream per cell instead of replaying one schedule
    prefix everywhere.

    The stream label defaults to the model ``name``; a composition
    (:class:`ComposedAdversary`) overrides ``rng_label`` per part so every
    composed model draws from its own stream — two models inside one
    composed run never share (or replay) each other's randomness.
    """

    def __init__(self, *, seed: Optional[int] = None) -> None:
        super().__init__()
        self.seed = seed
        #: Override to separate this instance's RNG stream from other
        #: instances of the same model in one run (``None`` -> ``name``).
        self.rng_label: Optional[str] = None
        # repro: disable=REP101 — placeholder only: attach() re-derives the
        # stream from (seed, "dynamics", label, topology fingerprint) before
        # any draw can happen
        self._rng = random.Random()

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        self._rng = random.Random(
            derive_seed(
                self.seed,
                "dynamics",
                self.rng_label or self.name,
                topology.fingerprint(),
            )
        )

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed}


class MessageLossAdversary(SeededAdversary):
    """Drops each message independently with probability ``p``.

    The benign end of the spectrum: the network is still fair (every
    message has positive delivery probability) but protocols relying on
    "every neighbour heard me" invariants start to see divergent local
    views.
    """

    name = "loss"

    def __init__(self, p: float = 0.05, *, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        self.p = _check_probability("p", p)

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        return DROP if self._rng.random() < self.p else DELIVER

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "p": self.p, "seed": self.seed}


class MessageDelayAdversary(SeededAdversary):
    """Delays each message independently with probability ``p``.

    A delayed message arrives ``1..max_delay`` rounds late (uniform).  If
    its port is carrying a fresh message in the arrival round, the stale
    copy is dropped — each port delivers at most one message per round, so
    delay degrades gracefully into loss under congestion.
    """

    name = "delay"

    def __init__(
        self,
        p: float = 0.1,
        max_delay: int = 3,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        self.p = _check_probability("p", p)
        if int(max_delay) < 1:
            raise ConfigurationError(f"max_delay must be >= 1, got {max_delay}")
        self.max_delay = int(max_delay)

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        if self._rng.random() < self.p:
            return self._rng.randint(1, self.max_delay)
        return DELIVER

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p": self.p,
            "max_delay": self.max_delay,
            "seed": self.seed,
        }


class AsynchronyAdversary(SeededAdversary):
    """Persistent per-link round skew: bounded asynchrony per link.

    At attach time each link independently becomes *skewed* with
    probability ``p`` and draws a fixed lateness uniform in
    ``1..max_skew``.  Every message traversing a skewed link — in either
    direction, for the whole run — arrives that many rounds late.

    This is a different execution model from
    :class:`MessageDelayAdversary`, whose delays are i.i.d. per message:
    here the *same* links are consistently slow, so the network behaves
    like a round-synchronous system whose links run on skewed clocks.  A
    skewed link pipelines cleanly (one message per round keeps arriving,
    just ``skew`` rounds behind), but information spreading along fixed
    routes is permanently out of phase — exactly the round-synchrony the
    paper's mixing-time and broadcast arguments lean on, which no
    bounded-delay i.i.d. model perturbs persistently.

    Metrics: ``fault.skewed-links`` records the number of skewed links
    once per simulator, and the lateness of each skewed link is traced as
    a ``link-skew`` event at the first round.
    """

    name = "skew"

    def __init__(
        self,
        p: float = 0.3,
        max_skew: int = 3,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        self.p = _check_probability("p", p)
        if int(max_skew) < 1:
            raise ConfigurationError(f"max_skew must be >= 1, got {max_skew}")
        self.max_skew = int(max_skew)
        self._skew: Dict[tuple, int] = {}
        self._traced = False

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        rng = self._rng
        self._skew = {}
        self._traced = False
        # topology.edges() iterates the sorted edge tuple, so the draw
        # order — and with it the RNG stream — is deterministic.
        for edge in topology.edges():
            if rng.random() < self.p:
                self._skew[edge] = rng.randint(1, self.max_skew)
        if self._skew:
            metrics.record_event("fault.skewed-links", len(self._skew))

    def begin_round(self, round_index: int) -> None:
        if not self._traced:
            self._traced = True
            for edge, skew in self._skew.items():
                self.trace.record(round_index, "link-skew", edge=edge, skew=skew)

    def link_skew(self, u: int, v: int) -> int:
        """The persistent lateness of link ``(u, v)`` (0 when unskewed)."""
        return self._skew.get(normalize_edge(u, v), 0)

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        return self._skew.get(normalize_edge(sender, receiver), DELIVER)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p": self.p,
            "max_skew": self.max_skew,
            "seed": self.seed,
        }


class LinkChurnAdversary(SeededAdversary):
    """Per-link up/down churn driven by a seeded two-state Markov schedule.

    At the start of every round each link flips independently: an up link
    goes down with probability ``p_down``, a down link recovers with
    probability ``p_up``.  Messages traversing a down link are lost.  The
    expected steady-state fraction of down links is
    ``p_down / (p_down + p_up)``.

    The adversary keeps an :class:`~repro.graphs.dynamic.EffectiveTopologyView`
    of the current round and accounts connectivity into the run metrics:

    * ``fault.link-down-rounds`` — sum over rounds of down links;
    * ``fault.disconnected-rounds`` — rounds whose effective topology was
      disconnected (the regime in which no election algorithm can
      guarantee progress).
    """

    name = "churn"

    def __init__(
        self,
        p_down: float = 0.05,
        p_up: float = 0.5,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        self.p_down = _check_probability("p_down", p_down)
        self.p_up = _check_probability("p_up", p_up)
        self._down: Set[tuple] = set()
        self._view: Optional[EffectiveTopologyView] = None

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        self._down = set()
        self._view = EffectiveTopologyView(topology)

    def begin_round(self, round_index: int) -> None:
        rng = self._rng
        down = self._down
        # topology.edges() iterates the sorted edge tuple, so the flip
        # order — and with it the RNG stream — is deterministic.
        for edge in self.topology.edges():
            if edge in down:
                if rng.random() < self.p_up:
                    down.discard(edge)
                    self.trace.record(round_index, "link-up", edge=edge)
            elif rng.random() < self.p_down:
                down.add(edge)
                self.trace.record(round_index, "link-down", edge=edge)
        self._view = EffectiveTopologyView(self.topology, down)
        if down:
            self.metrics.record_event("fault.link-down-rounds", len(down))
            if not self._view.is_connected():
                self.metrics.record_event("fault.disconnected-rounds")

    def effective_view(self) -> EffectiveTopologyView:
        """The effective topology of the current round."""
        if self._view is None:
            raise ConfigurationError("adversary is not attached to a simulator")
        return self._view

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        if normalize_edge(sender, receiver) in self._down:
            return DROP
        return DELIVER

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p_down": self.p_down,
            "p_up": self.p_up,
            "seed": self.seed,
        }


class CrashStopAdversary(SeededAdversary):
    """Crash-stop node failures on a seeded schedule.

    At attach time each node independently crashes with probability ``p``,
    at a round drawn uniformly from ``1..horizon``.  A crashed node is
    never stepped again and everything addressed to it is dropped; its
    pre-crash protocol state still appears in the per-node results, so a
    node that crashed mid-candidacy shows up as a candidate that never
    became leader.

    Crashes start at round 1 so that a run always has a first round of
    full participation (crashing a node "before the protocol exists" is a
    smaller-``n`` experiment, not a fault-tolerance one).
    """

    name = "crash"

    def __init__(
        self,
        p: float = 0.05,
        horizon: int = 64,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        self.p = _check_probability("p", p)
        if int(horizon) < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.horizon = int(horizon)
        self._crash_round: List[Optional[int]] = []

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        rng = self._rng
        self._crash_round = [
            rng.randint(1, self.horizon) if rng.random() < self.p else None
            for _ in range(topology.num_nodes)
        ]

    def begin_round(self, round_index: int) -> None:
        for node, crash_round in enumerate(self._crash_round):
            if crash_round == round_index:
                self.metrics.record_event("fault.node-crash")
                self.trace.record(round_index, "node-crash", node=node)

    def node_active(self, round_index: int, node: int) -> bool:
        crash_round = self._crash_round[node]
        return crash_round is None or round_index < crash_round

    def node_crashed(self, round_index: int, node: int) -> bool:
        crash_round = self._crash_round[node]
        return crash_round is not None and round_index >= crash_round

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        # The message would arrive at the start of round ``round_index + 1``;
        # drop it if the receiver is down by then.
        if not self.node_active(round_index + 1, receiver):
            return DROP
        return DELIVER

    def crashed_nodes(self, round_index: int) -> List[int]:
        """Indices of nodes that have crashed by ``round_index``."""
        return [
            node
            for node, crash_round in enumerate(self._crash_round)
            if crash_round is not None and round_index >= crash_round
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p": self.p,
            "horizon": self.horizon,
            "seed": self.seed,
        }


class ComposedAdversary(FaultAdversary):
    """Several fault models perturbing one run together.

    Real networks do not fail one mode at a time: links churn *while*
    messages drop *while* delivery lags.  ``ComposedAdversary`` delegates
    every hook to an ordered list of sub-models:

    * a round begins for every part (churn flips links, crashes fire);
    * a node is active only if every part says so;
    * a delivery is ruled on by the parts in order — the first ``DROP``
      wins, otherwise the parts' delays add up.

    **RNG stream separation.**  Each part is a normal seeded model bound
    to the same run seed, but its stream label is prefixed with its
    position in the composition (``composed[0].loss``), so parts draw
    from mutually independent deterministic streams: composing models
    never correlates their schedules, and adding a model to the
    composition never perturbs the streams of the others.

    Constructed via the registry as ``composed`` with a ``models``
    parameter naming the parts (``"loss+delay"``) and dotted per-model
    parameters (``{"loss.p": 0.05, "delay.max_delay": 3}``) — the CLI
    spelling is ``--adversary composed:loss+delay --adversary-param
    loss.p=0.05``.  See :func:`repro.dynamics.sweeps.composed_spec` for
    composing existing :class:`~repro.dynamics.spec.AdversarySpec` values
    programmatically.
    """

    name = "composed"

    def __init__(
        self, models: str = "", *, seed: Optional[int] = None, **params: float
    ) -> None:
        super().__init__()
        from .spec import ADVERSARIES  # deferred: spec.py imports this module

        self.seed = seed
        self.models = str(models)
        names = [part for part in self.models.replace("+", ",").split(",") if part]
        if not names:
            raise ConfigurationError(
                "composed adversary needs a models parameter naming its "
                "parts, e.g. models='loss+delay' "
                "(CLI: --adversary composed:loss+delay)"
            )
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"composed adversary lists a model twice: {self.models!r} "
                f"(dotted parameters like loss.p could not tell them apart)"
            )
        per_model: Dict[str, Dict[str, float]] = {name: {} for name in names}
        for key, value in params.items():
            model, dot, parameter = key.partition(".")
            if not dot or model not in per_model or not parameter:
                raise ConfigurationError(
                    f"bad composed-adversary parameter {key!r}; expected "
                    f"<model>.<param> with model in {names}, e.g. "
                    f"{names[0]}.p"
                )
            per_model[model][parameter] = value
        self.parts: List[FaultAdversary] = []
        for index, model_name in enumerate(names):
            if model_name == self.name or model_name not in ADVERSARIES:
                available = sorted(set(ADVERSARIES) - {self.name})
                raise ConfigurationError(
                    f"composed adversary cannot include {model_name!r}; "
                    f"available models: {available}"
                )
            model = ADVERSARIES[model_name]
            try:
                part = model(seed=seed, **per_model[model_name])
            except TypeError as error:
                raise ConfigurationError(
                    f"bad parameters for composed model {model_name!r}: {error}"
                ) from error
            part.rng_label = f"{self.name}[{index}].{model_name}"
            self.parts.append(part)

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        for part in self.parts:
            part.attach(topology, metrics, trace)

    def begin_round(self, round_index: int) -> None:
        for part in self.parts:
            part.begin_round(round_index)

    def node_active(self, round_index: int, node: int) -> bool:
        return all(part.node_active(round_index, node) for part in self.parts)

    def node_crashed(self, round_index: int, node: int) -> bool:
        return any(part.node_crashed(round_index, node) for part in self.parts)

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        delay = 0
        for part in self.parts:
            verdict = part.on_message(
                round_index, sender, sender_port, receiver, receiver_port, message
            )
            if verdict == DROP:
                return DROP
            delay += verdict
        return delay  # DELIVER (0) when no part delayed

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "models": self.models,
            "parts": [part.describe() for part in self.parts],
            "seed": self.seed,
        }
