"""Concrete fault-adversary models.

Four perturbations of the paper's reliable round-synchronous delivery
step, all deterministic functions of the run seed they are constructed
with (every random draw comes from a private RNG derived via
:func:`repro.core.rng.derive_seed`, so a run perturbs identically in any
process, worker count, or multiprocessing start method):

* :class:`MessageLossAdversary` — i.i.d. per-message loss;
* :class:`MessageDelayAdversary` — i.i.d. per-message bounded delay;
* :class:`LinkChurnAdversary` — per-link up/down Markov churn with an
  effective-topology connectivity account;
* :class:`CrashStopAdversary` — seeded crash-stop node failures.

The models deliberately stress the quantities the paper's analysis leans
on: loss and churn thin the communication graph (conductance and the
isoperimetric number drop, mixing slows), delay breaks round-synchrony of
information spread, and crash-stop removes candidates outright.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set

from ..core.errors import ConfigurationError
from ..core.faults import DELIVER, DROP, FaultAdversary
from ..core.messages import Message
from ..core.metrics import MetricsCollector
from ..core.rng import derive_seed
from ..core.tracing import TraceRecorder
from ..graphs.dynamic import EffectiveTopologyView, normalize_edge
from ..graphs.topology import Topology

__all__ = [
    "SeededAdversary",
    "MessageLossAdversary",
    "MessageDelayAdversary",
    "LinkChurnAdversary",
    "CrashStopAdversary",
]


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


class SeededAdversary(FaultAdversary):
    """Base class for adversaries whose schedule derives from the run seed.

    The RNG is (re)derived at :meth:`attach` time from ``(seed, "dynamics",
    name, topology fingerprint)``, so each simulator built during one run —
    phase-structured protocols build several — perturbs its execution from
    the same deterministic stream, independent of process or scheduling.
    The topology fingerprint is part of the derivation so that a sweep
    reusing one seed across many topologies draws an independent fault
    stream per cell instead of replaying one schedule prefix everywhere.
    """

    def __init__(self, *, seed: Optional[int] = None) -> None:
        super().__init__()
        self.seed = seed
        self._rng = random.Random()

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        self._rng = random.Random(
            derive_seed(self.seed, "dynamics", self.name, topology.fingerprint())
        )

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed}


class MessageLossAdversary(SeededAdversary):
    """Drops each message independently with probability ``p``.

    The benign end of the spectrum: the network is still fair (every
    message has positive delivery probability) but protocols relying on
    "every neighbour heard me" invariants start to see divergent local
    views.
    """

    name = "loss"

    def __init__(self, p: float = 0.05, *, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        self.p = _check_probability("p", p)

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        return DROP if self._rng.random() < self.p else DELIVER

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "p": self.p, "seed": self.seed}


class MessageDelayAdversary(SeededAdversary):
    """Delays each message independently with probability ``p``.

    A delayed message arrives ``1..max_delay`` rounds late (uniform).  If
    its port is carrying a fresh message in the arrival round, the stale
    copy is dropped — each port delivers at most one message per round, so
    delay degrades gracefully into loss under congestion.
    """

    name = "delay"

    def __init__(
        self,
        p: float = 0.1,
        max_delay: int = 3,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        self.p = _check_probability("p", p)
        if int(max_delay) < 1:
            raise ConfigurationError(f"max_delay must be >= 1, got {max_delay}")
        self.max_delay = int(max_delay)

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        if self._rng.random() < self.p:
            return self._rng.randint(1, self.max_delay)
        return DELIVER

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p": self.p,
            "max_delay": self.max_delay,
            "seed": self.seed,
        }


class LinkChurnAdversary(SeededAdversary):
    """Per-link up/down churn driven by a seeded two-state Markov schedule.

    At the start of every round each link flips independently: an up link
    goes down with probability ``p_down``, a down link recovers with
    probability ``p_up``.  Messages traversing a down link are lost.  The
    expected steady-state fraction of down links is
    ``p_down / (p_down + p_up)``.

    The adversary keeps an :class:`~repro.graphs.dynamic.EffectiveTopologyView`
    of the current round and accounts connectivity into the run metrics:

    * ``fault.link-down-rounds`` — sum over rounds of down links;
    * ``fault.disconnected-rounds`` — rounds whose effective topology was
      disconnected (the regime in which no election algorithm can
      guarantee progress).
    """

    name = "churn"

    def __init__(
        self,
        p_down: float = 0.05,
        p_up: float = 0.5,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        self.p_down = _check_probability("p_down", p_down)
        self.p_up = _check_probability("p_up", p_up)
        self._down: Set[tuple] = set()
        self._view: Optional[EffectiveTopologyView] = None

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        self._down = set()
        self._view = EffectiveTopologyView(topology)

    def begin_round(self, round_index: int) -> None:
        rng = self._rng
        down = self._down
        # topology.edges() iterates the sorted edge tuple, so the flip
        # order — and with it the RNG stream — is deterministic.
        for edge in self.topology.edges():
            if edge in down:
                if rng.random() < self.p_up:
                    down.discard(edge)
                    self.trace.record(round_index, "link-up", edge=edge)
            elif rng.random() < self.p_down:
                down.add(edge)
                self.trace.record(round_index, "link-down", edge=edge)
        self._view = EffectiveTopologyView(self.topology, down)
        if down:
            self.metrics.record_event("fault.link-down-rounds", len(down))
            if not self._view.is_connected():
                self.metrics.record_event("fault.disconnected-rounds")

    def effective_view(self) -> EffectiveTopologyView:
        """The effective topology of the current round."""
        if self._view is None:
            raise ConfigurationError("adversary is not attached to a simulator")
        return self._view

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        if normalize_edge(sender, receiver) in self._down:
            return DROP
        return DELIVER

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p_down": self.p_down,
            "p_up": self.p_up,
            "seed": self.seed,
        }


class CrashStopAdversary(SeededAdversary):
    """Crash-stop node failures on a seeded schedule.

    At attach time each node independently crashes with probability ``p``,
    at a round drawn uniformly from ``1..horizon``.  A crashed node is
    never stepped again and everything addressed to it is dropped; its
    pre-crash protocol state still appears in the per-node results, so a
    node that crashed mid-candidacy shows up as a candidate that never
    became leader.

    Crashes start at round 1 so that a run always has a first round of
    full participation (crashing a node "before the protocol exists" is a
    smaller-``n`` experiment, not a fault-tolerance one).
    """

    name = "crash"

    def __init__(
        self,
        p: float = 0.05,
        horizon: int = 64,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        self.p = _check_probability("p", p)
        if int(horizon) < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.horizon = int(horizon)
        self._crash_round: List[Optional[int]] = []

    def attach(
        self,
        topology: Topology,
        metrics: MetricsCollector,
        trace: TraceRecorder,
    ) -> None:
        super().attach(topology, metrics, trace)
        rng = self._rng
        self._crash_round = [
            rng.randint(1, self.horizon) if rng.random() < self.p else None
            for _ in range(topology.num_nodes)
        ]

    def begin_round(self, round_index: int) -> None:
        for node, crash_round in enumerate(self._crash_round):
            if crash_round == round_index:
                self.metrics.record_event("fault.node-crash")
                self.trace.record(round_index, "node-crash", node=node)

    def node_active(self, round_index: int, node: int) -> bool:
        crash_round = self._crash_round[node]
        return crash_round is None or round_index < crash_round

    def on_message(
        self,
        round_index: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        message: Message,
    ) -> int:
        # The message would arrive at the start of round ``round_index + 1``;
        # drop it if the receiver is down by then.
        if not self.node_active(round_index + 1, receiver):
            return DROP
        return DELIVER

    def crashed_nodes(self, round_index: int) -> List[int]:
        """Indices of nodes that have crashed by ``round_index``."""
        return [
            node
            for node, crash_round in enumerate(self._crash_round)
            if crash_round is not None and round_index >= crash_round
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p": self.p,
            "horizon": self.horizon,
            "seed": self.seed,
        }
